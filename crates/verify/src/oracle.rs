//! Exhaustive XBD0 oracle: ground truth by timed-waveform simulation.
//!
//! The engines under test (`xrta-chi`, `xrta-core`) all reason about
//! the χ-functions of the paper symbolically, through BDDs or SAT. This
//! module recomputes the same quantities by brute force, one input
//! minterm at a time, with nothing but the netlist, the delay model and
//! saturating [`Time`] arithmetic — so a bug shared by the symbolic
//! encodings cannot hide here.
//!
//! ## Settle times under XBD0
//!
//! Under the XBD0 model a gate with maximum delay `d` may exhibit *any*
//! delay in `[0, d]`, so before a node is known to have settled its
//! value is arbitrary. Fix an input minterm `x` and per-input settle
//! deadlines. The earliest time a gate `n` with final value `v` is
//! *guaranteed* settled is
//!
//! ```text
//! settle(n) = d_n + min { t : the fanins settled by t force n to v }
//! ```
//!
//! where a set of settled fanins *forces* `v` when every completion of
//! the unsettled fanins evaluates the local table to `v`. Because the
//! forcing property only grows as more fanins settle, it suffices to
//! scan the distinct fanin settle times in ascending order and stop at
//! the first forcing front — exactly the per-minterm specialisation of
//! the χ recursion (§4), computed without any symbolic machinery.
//!
//! A constant local function is forced by the empty set, giving
//! `settle = -∞ + d = -∞`; an input that never arrives (`+∞`) poisons
//! every path that genuinely needs it and nothing else.

use xrta_core::{RequiredTimeTuple, ValueTimes};
use xrta_network::Network;
use xrta_timing::{DelayModel, Time};

/// Hard ceiling on primary inputs for the exhaustive entry points
/// (`2^n` minterms are enumerated).
pub const MAX_ORACLE_INPUTS: usize = 16;

/// The input minterm with bit `i` of `m` assigned to input `i`.
pub fn minterm(input_count: usize, m: usize) -> Vec<bool> {
    (0..input_count).map(|i| (m >> i) & 1 == 1).collect()
}

/// Does the set of settled fanins (`known` bitmask) force the local
/// table to `v`, whatever the unsettled fanins do?
fn forced(table: &xrta_network::TruthTable, fan_values: &[bool], known: u32, v: bool) -> bool {
    let unknown: Vec<usize> = (0..fan_values.len())
        .filter(|i| known & (1u32 << i) == 0)
        .collect();
    let mut assign = fan_values.to_vec();
    for m in 0..(1usize << unknown.len()) {
        for (j, &i) in unknown.iter().enumerate() {
            assign[i] = (m >> j) & 1 == 1;
        }
        if table.eval(&assign) != v {
            return false;
        }
    }
    true
}

/// Per-node guaranteed settle times for one input minterm, with the
/// arrival of input `i` supplied by `arrival(i, x[i])`.
///
/// # Panics
///
/// Panics if `x.len() != net.inputs().len()`.
pub fn settle_times_with<D: DelayModel>(
    net: &Network,
    model: &D,
    x: &[bool],
    mut arrival: impl FnMut(usize, bool) -> Time,
) -> Vec<Time> {
    assert_eq!(x.len(), net.inputs().len(), "minterm width");
    let values = net.eval_all(x);
    let mut input_pos = vec![usize::MAX; net.node_count()];
    for (i, &id) in net.inputs().iter().enumerate() {
        input_pos[id.index()] = i;
    }
    let mut settle = vec![Time::NEG_INF; net.node_count()];
    for id in net.topological_order() {
        let n = net.node(id);
        if n.is_input() {
            let pos = input_pos[id.index()];
            settle[id.index()] = arrival(pos, x[pos]);
            continue;
        }
        let table = n.table().expect("gate nodes carry a truth table");
        let v = values[id.index()];
        let d = model.delay(net, id);
        let fan_settle: Vec<Time> = n.fanins.iter().map(|f| settle[f.index()]).collect();
        let fan_values: Vec<bool> = n.fanins.iter().map(|f| values[f.index()]).collect();
        // Candidate forcing fronts: -∞ (constant tables) plus each
        // distinct fanin settle time, ascending.
        let mut fronts = fan_settle.clone();
        fronts.push(Time::NEG_INF);
        fronts.sort();
        fronts.dedup();
        let mut out = Time::INF;
        for &t in &fronts {
            let mut known = 0u32;
            for (i, &s) in fan_settle.iter().enumerate() {
                if s <= t {
                    known |= 1u32 << i;
                }
            }
            if forced(table, &fan_values, known, v) {
                out = t + d;
                break;
            }
        }
        settle[id.index()] = out;
    }
    settle
}

/// Settle times with fixed (value-independent) input arrival times.
pub fn settle_times<D: DelayModel>(
    net: &Network,
    model: &D,
    x: &[bool],
    arrivals: &[Time],
) -> Vec<Time> {
    assert_eq!(arrivals.len(), net.inputs().len(), "arrival width");
    settle_times_with(net, model, x, |i, _| arrivals[i])
}

/// Settle times when each input meets the value-dependent deadlines of
/// `cond` (the worst case: input `i` settles to its final value exactly
/// at the deadline for that value).
pub fn settle_times_cond<D: DelayModel>(
    net: &Network,
    model: &D,
    x: &[bool],
    cond: &RequiredTimeTuple,
) -> Vec<Time> {
    assert_eq!(cond.per_input.len(), net.inputs().len(), "condition width");
    settle_times_with(net, model, x, |i, v| {
        if v {
            cond.per_input[i].value1
        } else {
            cond.per_input[i].value0
        }
    })
}

/// Ground-truth true arrival time of every primary output: the maximum
/// over all `2^n` input minterms of the per-minterm settle time.
///
/// This is the quantity `FunctionalTiming::true_arrivals` computes by
/// binary search over symbolic χ-stability.
///
/// # Panics
///
/// Panics beyond [`MAX_ORACLE_INPUTS`] primary inputs.
pub fn exhaustive_true_arrivals<D: DelayModel>(
    net: &Network,
    model: &D,
    arrivals: &[Time],
) -> Vec<Time> {
    let n = net.inputs().len();
    assert!(n <= MAX_ORACLE_INPUTS, "{n} inputs is beyond the oracle");
    let mut worst = vec![Time::NEG_INF; net.outputs().len()];
    for m in 0..(1usize << n) {
        let x = minterm(n, m);
        let settle = settle_times(net, model, &x, arrivals);
        for (w, &o) in worst.iter_mut().zip(net.outputs()) {
            *w = (*w).max(settle[o.index()]);
        }
    }
    worst
}

/// Is `cond` safe *at one minterm*: with every input meeting its
/// deadlines, does every output settle by its required time?
pub fn condition_safe_at<D: DelayModel>(
    net: &Network,
    model: &D,
    req: &[Time],
    x: &[bool],
    cond: &RequiredTimeTuple,
) -> bool {
    assert_eq!(req.len(), net.outputs().len(), "required width");
    let settle = settle_times_cond(net, model, x, cond);
    net.outputs()
        .iter()
        .zip(req)
        .all(|(&o, &r)| settle[o.index()] <= r)
}

/// Is `cond` safe over the whole input space?
///
/// # Panics
///
/// Panics beyond [`MAX_ORACLE_INPUTS`] primary inputs.
pub fn condition_safe<D: DelayModel>(
    net: &Network,
    model: &D,
    req: &[Time],
    cond: &RequiredTimeTuple,
) -> bool {
    let n = net.inputs().len();
    assert!(n <= MAX_ORACLE_INPUTS, "{n} inputs is beyond the oracle");
    (0..(1usize << n)).all(|m| condition_safe_at(net, model, req, &minterm(n, m), cond))
}

/// Is the uniform (value-independent) deadline vector `point` safe?
pub fn point_safe<D: DelayModel>(net: &Network, model: &D, req: &[Time], point: &[Time]) -> bool {
    condition_safe(net, model, req, &RequiredTimeTuple::uniform(point))
}

/// Ground-truth *maximal* safe active-deadline vectors at one minterm.
///
/// At a fixed minterm only the deadline of the value each input
/// actually settles to matters; a vector assigns one such deadline per
/// input. Safety is monotone-decreasing in the deadlines and piecewise
/// constant between the planned χ time points, so the unique maximal
/// antichain lives on the grid `lists[i] ∪ {∞}` — `lists[i]` being the
/// planned time list of input `i` for its active value. Returns `None`
/// when the grid exceeds `grid_limit` points.
pub fn maximal_safe_at<D: DelayModel>(
    net: &Network,
    model: &D,
    req: &[Time],
    x: &[bool],
    lists: &[Vec<Time>],
    grid_limit: usize,
) -> Option<Vec<Vec<Time>>> {
    assert_eq!(lists.len(), net.inputs().len(), "one time list per input");
    let axes: Vec<Vec<Time>> = lists
        .iter()
        .map(|l| {
            let mut axis = l.clone();
            axis.push(Time::INF);
            axis.dedup();
            axis
        })
        .collect();
    let mut size = 1usize;
    for a in &axes {
        size = size.checked_mul(a.len())?;
        if size > grid_limit {
            return None;
        }
    }
    let mut safe_points: Vec<Vec<Time>> = Vec::new();
    let mut idx = vec![0usize; axes.len()];
    loop {
        let point: Vec<Time> = idx.iter().zip(&axes).map(|(&i, a)| a[i]).collect();
        let cond = RequiredTimeTuple {
            per_input: x
                .iter()
                .zip(&point)
                .map(|(&v, &t)| {
                    // Inactive value: never asserted at this minterm.
                    if v {
                        ValueTimes {
                            value1: t,
                            value0: Time::INF,
                        }
                    } else {
                        ValueTimes {
                            value1: Time::INF,
                            value0: t,
                        }
                    }
                })
                .collect(),
        };
        if condition_safe_at(net, model, req, x, &cond) {
            safe_points.push(point);
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == axes.len() {
                let maximal: Vec<Vec<Time>> = safe_points
                    .iter()
                    .filter(|p| {
                        !safe_points
                            .iter()
                            .any(|q| q.iter().zip(p.iter()).all(|(a, b)| a >= b) && q != *p)
                    })
                    .cloned()
                    .collect();
                return Some(maximal);
            }
            idx[k] += 1;
            if idx[k] < axes[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Rounds a deadline to its canonical representative in the planned
/// time list: the earliest listed time `≥ t`, or `∞` when the deadline
/// outlives every referenced χ time point (all such deadlines are
/// semantically equivalent to "never").
pub fn canon(t: Time, list: &[Time]) -> Time {
    list.iter().copied().find(|&l| l >= t).unwrap_or(Time::INF)
}

/// Is deadline `a` at least as loose as `b`, modulo the planned-time
/// equivalence of [`canon`]? Strict numeric comparison would flag e.g.
/// `0 < 2` as a violation even when no χ time point lies in `(0, 2]`.
pub fn semantically_ge(a: Time, b: Time, list: &[Time]) -> bool {
    canon(a, list) >= canon(b, list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::{c17, fig4, two_mux_bypass};
    use xrta_network::GateKind;
    use xrta_timing::{topological_delays, UnitDelay};

    #[test]
    fn fig4_settle_matches_hand_analysis() {
        // z = AND(buf(x1), x2, buf(x2)), unit delays, arrivals 0.
        let net = fig4();
        let zeros = vec![Time::ZERO; 2];
        // x = 00: z = 0, forced as soon as any AND fanin settles to 0 —
        // x2 directly at 0, so z settles at 1.
        let s = settle_times(&net, &UnitDelay, &[false, false], &zeros);
        let z = net.outputs()[0];
        assert_eq!(s[z.index()], Time::new(1));
        // x = 11: z = 1, needs all three fanins; the buffered x2 path
        // settles at 1, z at 2.
        let s = settle_times(&net, &UnitDelay, &[true, true], &zeros);
        assert_eq!(s[z.index()], Time::new(2));
    }

    #[test]
    fn constant_function_settles_before_time_begins() {
        // z = OR(a, NOT a) is constant 1 but *not* locally forced: the
        // OR needs a settled fanin, so z settles at 2, not -∞.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let na = net.add_gate("na", GateKind::Not, &[a]).unwrap();
        let z = net.add_gate("z", GateKind::Or, &[a, na]).unwrap();
        net.mark_output(z);
        let s = settle_times(&net, &UnitDelay, &[false], &[Time::ZERO]);
        assert_eq!(s[z.index()], Time::new(2));
        // A genuinely constant local table is forced by the empty set.
        let mut net = Network::new("k");
        net.add_input("a").unwrap();
        let c = net.add_gate("c", GateKind::Const1, &[]).unwrap();
        net.mark_output(c);
        let s = settle_times(&net, &UnitDelay, &[true], &[Time::ZERO]);
        assert!(s[c.index()].is_neg_inf());
    }

    #[test]
    fn infinite_arrival_poisons_only_dependent_paths() {
        // MUX(s, a, b) with s=0 selects a; b may never arrive.
        let net = two_mux_bypass();
        let n = net.inputs().len();
        // With all inputs at 0 the outputs settle; push one input to ∞
        // and outputs not depending on its settled value stay finite.
        let mut arr = vec![Time::ZERO; n];
        arr[0] = Time::INF;
        let x = vec![false; n];
        let s = settle_times(&net, &UnitDelay, &x, &arr);
        assert!(net.outputs().iter().any(|o| s[o.index()].is_finite()));
    }

    #[test]
    fn exhaustive_true_arrivals_match_functional_timing_on_examples() {
        for net in [fig4(), c17(), two_mux_bypass()] {
            let zeros = vec![Time::ZERO; net.inputs().len()];
            let want = xrta_chi::FunctionalTiming::new(
                &net,
                &UnitDelay,
                zeros.clone(),
                xrta_chi::EngineKind::Bdd,
            )
            .true_arrivals();
            let got = exhaustive_true_arrivals(&net, &UnitDelay, &zeros);
            assert_eq!(got, want, "{}", net.name());
        }
    }

    #[test]
    fn fig4_ground_truth_matches_paper_table() {
        let net = fig4();
        let req = [Time::new(2)];
        // Planned active lists: x1 at {0}, x2 at {0, 1} for both values.
        let lists = vec![vec![Time::new(0)], vec![Time::new(0), Time::new(1)]];
        let at = |x1: bool, x2: bool| {
            let mut m = maximal_safe_at(&net, &UnitDelay, &req, &[x1, x2], &lists, 1024).unwrap();
            m.sort();
            m
        };
        assert_eq!(
            at(false, false),
            vec![vec![Time::new(0), Time::INF], vec![Time::INF, Time::new(1)]]
        );
        assert_eq!(at(true, false), vec![vec![Time::INF, Time::new(1)]]);
        assert_eq!(at(false, true), vec![vec![Time::new(0), Time::INF]]);
        assert_eq!(at(true, true), vec![vec![Time::new(0), Time::new(0)]]);
    }

    #[test]
    fn topological_requirement_is_always_safe() {
        for net in [fig4(), c17(), two_mux_bypass()] {
            let req = topological_delays(&net, &UnitDelay);
            let all = xrta_timing::required_times(&net, &UnitDelay, &req);
            let at_inputs: Vec<Time> = net.inputs().iter().map(|i| all[i.index()]).collect();
            assert!(
                point_safe(&net, &UnitDelay, &req, &at_inputs),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn canon_and_semantic_order() {
        let list = [Time::new(0), Time::new(3)];
        assert_eq!(canon(Time::new(-5), &list), Time::new(0));
        assert_eq!(canon(Time::new(0), &list), Time::new(0));
        assert_eq!(canon(Time::new(2), &list), Time::new(3));
        assert_eq!(canon(Time::new(4), &list), Time::INF);
        assert_eq!(canon(Time::INF, &list), Time::INF);
        assert!(semantically_ge(Time::new(0), Time::new(-7), &list));
        assert!(!semantically_ge(Time::new(0), Time::new(1), &list));
        assert!(semantically_ge(Time::new(4), Time::INF, &list));
    }
}
