//! Differential fuzzing for required-time-driven resynthesis.
//!
//! `xrta-resynth` promises two things about every run: the output
//! network computes the *same function* as the input, and no primary
//! output's *true* (false-path-aware) arrival time gets worse. This
//! module attacks both promises with seeded netlists and seeded delay
//! perturbations, re-checking them *independently* — equivalence by
//! the exhaustive oracle (never the SAT miter the resynthesizer itself
//! leans on), delay by a fresh functional-timing run per output — plus
//! the reporting invariant that an unchanged run leaves the netlist
//! byte-identical.
//!
//! Failures shrink through the structural shrinker (delay overrides
//! follow the surviving node names) and are filed as paired
//! `resynth_seed_NNNN_pre`/`_post` corpus entries, replayable via
//! [`replay_resynth_pair`].

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use xrta_chi::{EngineKind, FunctionalTiming};
use xrta_circuits::random_circuit;
use xrta_network::{write_bench, Network};
use xrta_resynth::{resynthesize, DelaySpec, ResynthOptions};
use xrta_rng::Rng;
use xrta_timing::{Time, UnitDelay};

use crate::corpus::{load_dir, save, CorpusEntry};
use crate::harness::{mix64, spec_for_seed};
use crate::shrink::{shrink, TestCase};

/// Options for the resynthesis differential.
#[derive(Clone)]
pub struct ResynthFuzzOptions {
    /// Number of seeds to run.
    pub seeds: usize,
    /// Base seed; each case derives its own via [`mix64`].
    pub base_seed: u64,
    /// Primary-input ceiling for generated base circuits (≤ 16, so
    /// the exhaustive oracle stays the independent judge).
    pub max_inputs: usize,
    /// Stop early after this much wall clock.
    pub time_cap: Option<Duration>,
    /// Corpus directory: small existing entries serve as extra bases,
    /// and failures are filed here as pre/post pairs (`None`: random
    /// bases only, don't write).
    pub corpus_dir: Option<PathBuf>,
    /// Cooperative cancellation, checked between seeds.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for ResynthFuzzOptions {
    fn default() -> Self {
        ResynthFuzzOptions {
            seeds: 100,
            base_seed: 0x5E51,
            max_inputs: 8,
            time_cap: None,
            corpus_dir: None,
            cancel: None,
        }
    }
}

/// One resynthesis differential failure, after shrinking.
#[derive(Debug)]
pub struct ResynthFailure {
    /// The failing seed index.
    pub index: u64,
    /// Every violated check, human-readable.
    pub checks: Vec<String>,
    /// Gate count of the shrunk reproducer.
    pub shrunk_gates: usize,
    /// Corpus paths of the filed pre/post pair, if written.
    pub corpus_paths: Option<(PathBuf, PathBuf)>,
}

/// Summary of a resynthesis fuzz run.
#[derive(Debug, Default)]
pub struct ResynthFuzzReport {
    /// Seeds actually run.
    pub seeds_run: usize,
    /// Cases where the resynthesizer kept at least one rewrite.
    pub changed: usize,
    /// Whether the time cap cut the run short.
    pub time_capped: bool,
    /// Whether the cancel flag cut the run short.
    pub cancelled: bool,
    /// Every failure found.
    pub failures: Vec<ResynthFailure>,
}

/// Seeded sparse delay perturbation: a few nodes get 2–4 ticks.
fn perturb_delays(rng: &mut Rng, net: &Network) -> BTreeMap<String, i64> {
    let mut overrides = BTreeMap::new();
    let nodes: Vec<String> = net.node_ids().map(|id| net.node(id).name.clone()).collect();
    let count = rng.range(0, nodes.len().min(4) + 1);
    for _ in 0..count {
        let pick = rng.range(0, nodes.len());
        overrides.insert(nodes[pick].clone(), rng.range_i64(2, 5));
    }
    overrides
}

/// The independent checks: everything the resynthesizer must never
/// break, judged without reusing its own proof machinery.
fn violated_checks(entry: &CorpusEntry) -> Vec<String> {
    let spec = DelaySpec {
        default: 1,
        overrides: entry.delays.clone(),
    };
    let opts = ResynthOptions::default();
    let report = resynthesize(&entry.case.net, &spec, &opts);
    let mut bad = Vec::new();
    if let Some(e) = &report.degraded {
        bad.push(format!("degraded under an unlimited budget: {e}"));
        return bad;
    }
    if !report.changed && write_bench(&report.net) != write_bench(&entry.case.net) {
        bad.push("unchanged run did not preserve the netlist bytes".to_string());
    }
    // Equivalence, by the exhaustive oracle (positional outputs).
    let n = entry.case.net.inputs().len();
    for m in 0..(1u64 << n) {
        let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        if entry.case.net.eval(&x) != report.net.eval(&x) {
            bad.push(format!("not equivalent at minterm {m:#b}"));
            break;
        }
    }
    // True delay, by a fresh functional-timing run on each side.
    let before = true_arrivals(&entry.case.net, &spec);
    let after = true_arrivals(&report.net, &spec);
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        if a > b {
            bad.push(format!("output {i} true arrival regressed: {b} -> {a}"));
        }
    }
    bad
}

fn true_arrivals(net: &Network, spec: &DelaySpec) -> Vec<Time> {
    let model = spec.model_for(net);
    let zeros = vec![Time::ZERO; net.inputs().len()];
    FunctionalTiming::new(net, &model, zeros, EngineKind::Sat).true_arrivals()
}

/// Runs the resynthesis differential over `opts.seeds` cases. Bases
/// alternate between small snapshotted corpus entries and fresh random
/// circuits; each case gets a seeded sparse delay perturbation.
pub fn resynth_fuzz(
    opts: &ResynthFuzzOptions,
    mut progress: impl FnMut(&str),
) -> ResynthFuzzReport {
    let t0 = Instant::now();
    let mut report = ResynthFuzzReport::default();
    // Snapshot the corpus up front (failures filed during this run must
    // not become bases), keeping only entries the exhaustive oracle can
    // judge quickly.
    let corpus_bases: Vec<CorpusEntry> = opts
        .corpus_dir
        .as_ref()
        .and_then(|d| load_dir(d).ok())
        .unwrap_or_default()
        .into_iter()
        .map(|(_, e)| e)
        .filter(|e| e.case.net.inputs().len() <= opts.max_inputs)
        .collect();
    for index in 0..opts.seeds as u64 {
        if let Some(cap) = opts.time_cap {
            if t0.elapsed() >= cap {
                report.time_capped = true;
                progress(&format!(
                    "time cap reached after {} of {} seeds",
                    report.seeds_run, opts.seeds
                ));
                break;
            }
        }
        if opts
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        {
            report.cancelled = true;
            progress(&format!(
                "cancelled after {} of {} seeds",
                report.seeds_run, opts.seeds
            ));
            break;
        }
        let mut rng = Rng::seed_from_u64(mix64(opts.base_seed ^ mix64(index ^ 0x5E51)));
        let mut entry = if !corpus_bases.is_empty() && index % 2 == 0 {
            let pick = (index as usize / 2) % corpus_bases.len();
            corpus_bases[pick].clone()
        } else {
            let spec = spec_for_seed(opts.base_seed ^ 0x5E51, index, opts.max_inputs);
            let net = random_circuit(spec).expect("spec is non-degenerate");
            let req = xrta_timing::topological_delays(&net, &UnitDelay);
            CorpusEntry {
                case: TestCase { net, req },
                delays: BTreeMap::new(),
                origin: format!("resynth base seed {index}"),
            }
        };
        entry
            .delays
            .extend(perturb_delays(&mut rng, &entry.case.net));
        report.seeds_run += 1;
        let checks = violated_checks(&entry);
        if checks.is_empty() {
            let spec = DelaySpec {
                default: 1,
                overrides: entry.delays.clone(),
            };
            let r = resynthesize(&entry.case.net, &spec, &ResynthOptions::default());
            if r.changed {
                report.changed += 1;
            }
            continue;
        }
        progress(&format!("seed {index}: {}", checks.join("; ")));
        // Shrink structurally; overrides follow the surviving names.
        let delays = entry.delays.clone();
        let shrunk_case = shrink(&entry.case, |cand| {
            let cand_entry = CorpusEntry {
                case: cand.clone(),
                delays: delays
                    .iter()
                    .filter(|(name, _)| cand.net.find(name).is_some())
                    .map(|(n, &t)| (n.clone(), t))
                    .collect(),
                origin: String::new(),
            };
            !violated_checks(&cand_entry).is_empty()
        });
        let shrunk = CorpusEntry {
            delays: delays
                .iter()
                .filter(|(name, _)| shrunk_case.net.find(name).is_some())
                .map(|(n, &t)| (n.clone(), t))
                .collect(),
            case: shrunk_case,
            origin: format!(
                "resynth fuzz seed {index} base {:#x} ({})",
                opts.base_seed,
                checks.join("; ")
            ),
        };
        progress(&format!(
            "seed {index}: shrunk to {} gate(s)",
            shrunk.case.net.gate_count()
        ));
        let corpus_paths = opts.corpus_dir.as_ref().and_then(|dir| {
            let spec = DelaySpec {
                default: 1,
                overrides: shrunk.delays.clone(),
            };
            let r = resynthesize(&shrunk.case.net, &spec, &ResynthOptions::default());
            let post = CorpusEntry {
                case: TestCase {
                    net: r.net,
                    req: shrunk.case.req.clone(),
                },
                delays: shrunk.delays.clone(),
                origin: shrunk.origin.clone(),
            };
            let pp = save(dir, &format!("resynth_seed_{index:04}_pre"), &shrunk);
            let pq = save(dir, &format!("resynth_seed_{index:04}_post"), &post);
            match (pp, pq) {
                (Ok(pp), Ok(pq)) => {
                    progress(&format!(
                        "seed {index}: filed {} + {}",
                        pp.display(),
                        pq.display()
                    ));
                    Some((pp, pq))
                }
                (p, q) => {
                    progress(&format!(
                        "seed {index}: corpus write failed: {:?} / {:?}",
                        p.err(),
                        q.err()
                    ));
                    None
                }
            }
        });
        report.failures.push(ResynthFailure {
            index,
            checks,
            shrunk_gates: shrunk.case.net.gate_count(),
            corpus_paths,
        });
    }
    report
}

/// Replays one filed pre/post resynthesis pair: the pair must be
/// oracle-equivalent and the post side must not regress any output's
/// true arrival under the pre side's delay overrides. Used by the
/// corpus regression test.
pub fn replay_resynth_pair(pre: &CorpusEntry, post: &CorpusEntry) -> Result<(), String> {
    let a = &pre.case.net;
    let b = &post.case.net;
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Err(format!(
            "interface mismatch: {}x{} vs {}x{}",
            a.inputs().len(),
            a.outputs().len(),
            b.inputs().len(),
            b.outputs().len()
        ));
    }
    let n = a.inputs().len();
    if n <= crate::oracle::MAX_ORACLE_INPUTS {
        for m in 0..(1u64 << n) {
            let x: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            if a.eval(&x) != b.eval(&x) {
                return Err(format!("pre/post differ at minterm {m:#b}"));
            }
        }
    } else {
        // Beyond the exhaustive oracle: the SAT miter decides.
        match xrta_network::check_equivalence(a, b) {
            xrta_network::Equivalence::Equivalent => {}
            xrta_network::Equivalence::Differs(x) => {
                return Err(format!("pre/post differ at {x:?}"));
            }
        }
    }
    let spec = DelaySpec {
        default: 1,
        overrides: pre.delays.clone(),
    };
    let before = true_arrivals(a, &spec);
    let after = true_arrivals(b, &spec);
    for (i, (b_t, a_t)) in before.iter().zip(&after).enumerate() {
        if a_t > b_t {
            return Err(format!("output {i} true arrival regressed: {b_t} -> {a_t}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::ripple_carry_adder;
    use xrta_timing::topological_delays;

    #[test]
    fn a_short_run_is_clean_and_finds_improvements() {
        let opts = ResynthFuzzOptions {
            seeds: 6,
            max_inputs: 6,
            ..ResynthFuzzOptions::default()
        };
        let report = resynth_fuzz(&opts, |_| {});
        assert_eq!(report.seeds_run, 6);
        assert!(
            report.failures.is_empty(),
            "clean seeds must stay clean: {:?}",
            report.failures
        );
    }

    #[test]
    fn replay_accepts_a_genuine_resynthesis_pair() {
        let net = ripple_carry_adder(4).unwrap();
        let req = topological_delays(&net, &UnitDelay);
        let pre = CorpusEntry {
            case: TestCase {
                net: net.clone(),
                req: req.clone(),
            },
            delays: BTreeMap::new(),
            origin: "test".to_string(),
        };
        let r = resynthesize(&net, &DelaySpec::unit(), &ResynthOptions::default());
        let post = CorpusEntry {
            case: TestCase { net: r.net, req },
            delays: BTreeMap::new(),
            origin: "test".to_string(),
        };
        assert_eq!(replay_resynth_pair(&pre, &post), Ok(()));
    }

    #[test]
    fn replay_rejects_a_function_change() {
        let net = ripple_carry_adder(4).unwrap();
        let other = ripple_carry_adder(4).unwrap();
        let req = topological_delays(&net, &UnitDelay);
        let pre = CorpusEntry {
            case: TestCase {
                net: net.clone(),
                req: req.clone(),
            },
            delays: BTreeMap::new(),
            origin: String::new(),
        };
        // Same interface, different function: flip every AND to NAND.
        let text = write_bench(&other).replace("AND", "NAND");
        let broken = xrta_network::parse_bench(&text).unwrap();
        let post = CorpusEntry {
            case: TestCase { net: broken, req },
            delays: BTreeMap::new(),
            origin: String::new(),
        };
        assert!(replay_resynth_pair(&pre, &post).is_err());
    }
}
