//! Edit-sequence (ECO) differential fuzzing for incremental analysis.
//!
//! The incremental path caches per-cone verdicts keyed by the cone
//! fingerprint and splices them into later reports. Its soundness claim
//! is exactly this: *a verdict computed for a fingerprint in one
//! netlist state may be reused for the same fingerprint in any other
//! state*. This module attacks that claim the way an ECO flow would —
//! by mutating a netlist through a sequence of small engineering
//! changes and checking, after every edit, that a warm cone cache
//! carried across the whole sequence renders the byte-identical report
//! a cold from-scratch analysis produces.
//!
//! Edits are *name-keyed*, not id-keyed: an [`EditOp`] names the node
//! it touches, and an op whose node has since disappeared (or whose
//! structural precondition no longer holds) is a clean no-op. That
//! makes any *subsequence* of an edit script applicable to the base
//! netlist, which is what lets the shrinker minimise a failing script
//! by dropping edits instead of re-deriving them.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use xrta_circuits::random_circuit;
use xrta_core::cone::{analyze_cone, slice_cones, splice, ConeVerdict};
use xrta_core::{Budget, SessionOptions, Verdict};
use xrta_network::{GateKind, Network, NodeFunc, NodeId};
use xrta_rng::Rng;
use xrta_timing::{topological_delays, UnitDelay};

use crate::corpus::{load_dir, save, CorpusEntry};
use crate::harness::{mix64, spec_for_seed};
use crate::shrink::TestCase;

/// One engineering change order, keyed by node *name* so that stale
/// ops degrade to no-ops instead of corrupting the netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Set the named gate's delay override to `ticks`.
    DelayResize {
        /// Gate name.
        node: String,
        /// New delay in ticks.
        ticks: i64,
    },
    /// Replace the named gate's function with an arity-compatible
    /// library kind (fanins unchanged).
    GateSwap {
        /// Gate name.
        node: String,
        /// Replacement kind.
        kind: GateKind,
    },
    /// Reroute fanin `pin` of the named gate to the named source node.
    /// Only sources created earlier than the gate are legal (keeps the
    /// network acyclic by construction order).
    WireReroute {
        /// Gate name.
        node: String,
        /// Fanin position to rewire.
        pin: usize,
        /// New source node name.
        src: String,
    },
    /// Add a buffered duplicate of primary output `output` as a new
    /// primary output with the same required time.
    PoDuplicate {
        /// Output position to duplicate.
        output: usize,
        /// Name for the new buffer node.
        name: String,
    },
    /// Insert a named buffer on the edge into fanin `pin` of the named
    /// gate.
    GateInsert {
        /// Gate name.
        node: String,
        /// Fanin position to buffer.
        pin: usize,
        /// Name for the new buffer node.
        name: String,
    },
    /// Delete the named gate, aliasing its uses to its first fanin.
    GateDelete {
        /// Gate name.
        node: String,
    },
}

impl std::fmt::Display for EditOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditOp::DelayResize { node, ticks } => write!(f, "resize {node}={ticks}"),
            EditOp::GateSwap { node, kind } => write!(f, "swap {node}->{kind:?}"),
            EditOp::WireReroute { node, pin, src } => write!(f, "reroute {node}[{pin}]<-{src}"),
            EditOp::PoDuplicate { output, name } => write!(f, "dup-po {output} as {name}"),
            EditOp::GateInsert { node, pin, name } => write!(f, "insert {name} at {node}[{pin}]"),
            EditOp::GateDelete { node } => write!(f, "delete {node}"),
        }
    }
}

/// A structural rewrite one rebuild pass applies, resolved to ids.
enum NodeEdit<'a> {
    None,
    SwapKind(NodeId, GateKind),
    Reroute(NodeId, usize, NodeId),
    InsertBuf {
        node: NodeId,
        pin: usize,
        name: &'a str,
    },
    Delete(NodeId),
}

/// Rebuilds `net` node by node, applying one [`NodeEdit`]. Returns
/// `None` when the edit is inapplicable (illegal arity, merged
/// outputs, deleting a const gate, …) — the caller treats that as a
/// no-op edit.
fn rebuild(net: &Network, edit: &NodeEdit) -> Option<Network> {
    let mut out = Network::new(net.name().to_string());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for id in net.node_ids() {
        let n = net.node(id);
        if let NodeEdit::Delete(victim) = edit {
            if id == *victim {
                let target = *n.fanins.first()?;
                let mapped = *map.get(&target)?;
                map.insert(id, mapped);
                continue;
            }
        }
        let new = match &n.func {
            NodeFunc::Input => out.add_input(n.name.clone()).ok()?,
            NodeFunc::Gate { table, kind } => {
                let mut fanins: Vec<NodeId> = n
                    .fanins
                    .iter()
                    .map(|f| map.get(f).copied())
                    .collect::<Option<_>>()?;
                match edit {
                    NodeEdit::Reroute(victim, pin, src) if id == *victim => {
                        fanins[*pin] = *map.get(src)?;
                    }
                    NodeEdit::InsertBuf { node, pin, name } if id == *node => {
                        let buf = out
                            .add_gate((*name).to_string(), GateKind::Buf, &[fanins[*pin]])
                            .ok()?;
                        fanins[*pin] = buf;
                    }
                    _ => {}
                }
                let kind = match edit {
                    NodeEdit::SwapKind(victim, k) if id == *victim => Some(*k),
                    _ => *kind,
                };
                match kind {
                    Some(k) => out.add_gate(n.name.clone(), k, &fanins).ok()?,
                    None => out.add_table(n.name.clone(), table.clone(), &fanins).ok()?,
                }
            }
        };
        map.insert(id, new);
    }
    let new_outputs: Vec<NodeId> = net
        .outputs()
        .iter()
        .map(|o| map.get(o).copied())
        .collect::<Option<_>>()?;
    // Refuse edits that merge two primary outputs into one node: the
    // required-time vector would no longer be index-aligned.
    let mut seen = new_outputs.clone();
    seen.sort();
    seen.dedup();
    if seen.len() != new_outputs.len() {
        return None;
    }
    for &o in &new_outputs {
        out.mark_output(o);
    }
    Some(out)
}

/// Applies one edit to a corpus state. `None` means the edit was a
/// no-op (stale name, illegal arity, merged outputs) and the state is
/// unchanged; shrunk subsequences stay applicable because of this.
pub fn apply_edit(entry: &CorpusEntry, op: &EditOp) -> Option<CorpusEntry> {
    let net = &entry.case.net;
    let gate_of = |name: &str| -> Option<NodeId> {
        let id = net.find(name)?;
        (!net.node(id).is_input()).then_some(id)
    };
    let mut next = match op {
        EditOp::DelayResize { node, ticks } => {
            gate_of(node)?;
            let mut e = entry.clone();
            e.delays.insert(node.clone(), *ticks);
            e
        }
        EditOp::GateSwap { node, kind } => {
            let id = gate_of(node)?;
            let new_net = rebuild(net, &NodeEdit::SwapKind(id, *kind))?;
            CorpusEntry {
                case: TestCase {
                    net: new_net,
                    req: entry.case.req.clone(),
                },
                delays: entry.delays.clone(),
                origin: entry.origin.clone(),
            }
        }
        EditOp::WireReroute { node, pin, src } => {
            let id = gate_of(node)?;
            let src_id = net.find(src)?;
            if *pin >= net.node(id).fanins.len() || src_id.index() >= id.index() {
                return None;
            }
            let new_net = rebuild(net, &NodeEdit::Reroute(id, *pin, src_id))?;
            CorpusEntry {
                case: TestCase {
                    net: new_net,
                    req: entry.case.req.clone(),
                },
                delays: entry.delays.clone(),
                origin: entry.origin.clone(),
            }
        }
        EditOp::PoDuplicate { output, name } => {
            if *output >= net.outputs().len() || net.find(name).is_some() {
                return None;
            }
            let mut new_net = rebuild(net, &NodeEdit::None)?;
            let root = new_net.outputs()[*output];
            let buf = new_net
                .add_gate(name.clone(), GateKind::Buf, &[root])
                .ok()?;
            new_net.mark_output(buf);
            let mut req = entry.case.req.clone();
            req.push(req[*output]);
            CorpusEntry {
                case: TestCase { net: new_net, req },
                delays: entry.delays.clone(),
                origin: entry.origin.clone(),
            }
        }
        EditOp::GateInsert { node, pin, name } => {
            let id = gate_of(node)?;
            if *pin >= net.node(id).fanins.len() || net.find(name).is_some() {
                return None;
            }
            let new_net = rebuild(
                net,
                &NodeEdit::InsertBuf {
                    node: id,
                    pin: *pin,
                    name: name.as_str(),
                },
            )?;
            CorpusEntry {
                case: TestCase {
                    net: new_net,
                    req: entry.case.req.clone(),
                },
                delays: entry.delays.clone(),
                origin: entry.origin.clone(),
            }
        }
        EditOp::GateDelete { node } => {
            let id = gate_of(node)?;
            let new_net = rebuild(net, &NodeEdit::Delete(id))?;
            CorpusEntry {
                case: TestCase {
                    net: new_net,
                    req: entry.case.req.clone(),
                },
                delays: entry.delays.clone(),
                origin: entry.origin.clone(),
            }
        }
    };
    // Deleted nodes must not linger in the overrides map: the corpus
    // serialiser round-trips it and the parser rejects unknown names.
    let names: std::collections::HashSet<String> = next
        .case
        .net
        .node_ids()
        .map(|id| next.case.net.node(id).name.clone())
        .collect();
    next.delays.retain(|name, _| names.contains(name));
    Some(next)
}

/// Applies a whole edit script, skipping inapplicable ops. Returns the
/// state after each applied-or-skipped edit (`states[0]` is the base).
pub fn apply_sequence(base: &CorpusEntry, edits: &[EditOp]) -> Vec<CorpusEntry> {
    let mut states = vec![base.clone()];
    for op in edits {
        let cur = states.last().unwrap();
        let next = apply_edit(cur, op).unwrap_or_else(|| cur.clone());
        states.push(next);
    }
    states
}

/// Draws one random edit applicable (in expectation) to `entry`.
/// `fresh` is a monotone counter used to mint collision-free node
/// names for inserts and PO duplicates.
pub fn random_edit(rng: &mut Rng, entry: &CorpusEntry, fresh: &mut usize) -> EditOp {
    let net = &entry.case.net;
    let gates: Vec<NodeId> = net
        .node_ids()
        .filter(|&id| !net.node(id).is_input() && !net.node(id).fanins.is_empty())
        .collect();
    let mut mint = || {
        *fresh += 1;
        format!("eco{}", *fresh)
    };
    for _ in 0..8 {
        let choice = rng.range(0, 6);
        match choice {
            0 if !gates.is_empty() => {
                let id = *rng.pick(&gates);
                return EditOp::DelayResize {
                    node: net.node(id).name.clone(),
                    ticks: rng.range_i64(1, 5),
                };
            }
            1 if !gates.is_empty() => {
                let id = *rng.pick(&gates);
                let arity = net.node(id).fanins.len();
                let kinds: &[GateKind] = if arity == 1 {
                    &[GateKind::Buf, GateKind::Not]
                } else if arity == 3 {
                    &[
                        GateKind::And,
                        GateKind::Or,
                        GateKind::Nand,
                        GateKind::Nor,
                        GateKind::Xor,
                        GateKind::Xnor,
                        GateKind::Mux,
                    ]
                } else {
                    &[
                        GateKind::And,
                        GateKind::Or,
                        GateKind::Nand,
                        GateKind::Nor,
                        GateKind::Xor,
                        GateKind::Xnor,
                    ]
                };
                return EditOp::GateSwap {
                    node: net.node(id).name.clone(),
                    kind: *rng.pick(kinds),
                };
            }
            2 if !gates.is_empty() => {
                let id = *rng.pick(&gates);
                if id.index() == 0 {
                    continue;
                }
                let pin = rng.range(0, net.node(id).fanins.len());
                let src = NodeId::from_index(rng.range(0, id.index()));
                return EditOp::WireReroute {
                    node: net.node(id).name.clone(),
                    pin,
                    src: net.node(src).name.clone(),
                };
            }
            3 => {
                return EditOp::PoDuplicate {
                    output: rng.range(0, net.outputs().len()),
                    name: mint(),
                };
            }
            4 if !gates.is_empty() => {
                let id = *rng.pick(&gates);
                return EditOp::GateInsert {
                    node: net.node(id).name.clone(),
                    pin: rng.range(0, net.node(id).fanins.len()),
                    name: mint(),
                };
            }
            5 if gates.len() > 1 => {
                let id = *rng.pick(&gates);
                return EditOp::GateDelete {
                    node: net.node(id).name.clone(),
                };
            }
            _ => continue,
        }
    }
    EditOp::PoDuplicate {
        output: 0,
        name: mint(),
    }
}

/// Deterministic analysis options for the differential: unlimited
/// budget, no wall-clock deadline, so the governed ladder never
/// degrades and the report bytes depend only on the descriptor.
fn differential_options() -> SessionOptions {
    SessionOptions {
        budget: Budget::unlimited(),
        timeout: None,
        fallback: true,
        ..SessionOptions::default()
    }
}

/// Walks a state sequence with a warm fingerprint-keyed cone cache
/// carried across states (the incremental path) and a cold fresh
/// analysis per state (the oracle). Returns the index of the first
/// state whose warm-spliced report differs byte-for-byte from the cold
/// one, or `None` when the whole sequence agrees.
pub fn first_disagreement(states: &[CorpusEntry]) -> Option<usize> {
    let opts = differential_options();
    let mut warm: HashMap<u128, ConeVerdict> = HashMap::new();
    for (k, st) in states.iter().enumerate() {
        let model = st.delay_model();
        let net = &st.case.net;
        let req = &st.case.req;
        let slices = slice_cones(net, &model, req);
        let mut warm_verdicts = Vec::with_capacity(slices.len());
        let mut cold_verdicts = Vec::with_capacity(slices.len());
        for s in &slices {
            let cold =
                analyze_cone(s, Verdict::Approx2, &opts).expect("unlimited budget cannot exhaust");
            let reused = warm
                .entry(s.fingerprint)
                .or_insert_with(|| cold.clone())
                .clone();
            warm_verdicts.push(reused);
            cold_verdicts.push(cold);
        }
        let w = splice(net, &model, req, Verdict::Approx2, &slices, &warm_verdicts).render();
        let c = splice(net, &model, req, Verdict::Approx2, &slices, &cold_verdicts).render();
        if w != c {
            return Some(k);
        }
    }
    None
}

/// Minimises a failing edit script: truncate to the failing prefix,
/// then greedily drop single edits while `fails` still reports a
/// disagreement. `fails` receives a candidate script and returns the
/// failing state index, if any.
pub fn shrink_edits(
    edits: &[EditOp],
    step: usize,
    mut fails: impl FnMut(&[EditOp]) -> Option<usize>,
) -> (Vec<EditOp>, usize) {
    let mut best: Vec<EditOp> = edits[..step.min(edits.len())].to_vec();
    let mut best_step = step;
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if let Some(s) = fails(&candidate) {
                best = candidate;
                best_step = s;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return (best, best_step);
        }
    }
}

/// Options for [`eco_fuzz`].
#[derive(Clone, Debug)]
pub struct EcoFuzzOptions {
    /// Number of edit sequences to run.
    pub sequences: usize,
    /// Base seed; each sequence derives its own via [`mix64`].
    pub base_seed: u64,
    /// Primary-input ceiling for generated base circuits (≤ 16).
    pub max_inputs: usize,
    /// Stop early after this much wall clock.
    pub time_cap: Option<Duration>,
    /// Corpus directory: existing entries are snapshotted as base
    /// netlists, and shrunk failures are filed here as before/after
    /// pairs (`None`: random bases only, don't write).
    pub corpus_dir: Option<PathBuf>,
    /// Cooperative cancellation, checked between sequences.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for EcoFuzzOptions {
    fn default() -> Self {
        EcoFuzzOptions {
            sequences: 100,
            base_seed: 0xEC0,
            max_inputs: 8,
            time_cap: None,
            corpus_dir: None,
            cancel: None,
        }
    }
}

/// One ECO differential failure, after shrinking.
#[derive(Debug)]
pub struct EcoFailure {
    /// The failing sequence index.
    pub index: u64,
    /// State index (within the shrunk script) where warm and cold
    /// reports first diverged.
    pub step: usize,
    /// The minimised edit script.
    pub edits: Vec<EditOp>,
    /// Corpus paths of the filed before/after pair, if written.
    pub corpus_paths: Option<(PathBuf, PathBuf)>,
}

/// Summary of an ECO fuzz run.
#[derive(Debug, Default)]
pub struct EcoReport {
    /// Edit sequences actually run.
    pub sequences_run: usize,
    /// Total edits applied across all sequences.
    pub edits_applied: usize,
    /// Whether the time cap cut the run short.
    pub time_capped: bool,
    /// Whether the cancel flag cut the run short.
    pub cancelled: bool,
    /// Every failure found.
    pub failures: Vec<EcoFailure>,
}

/// Runs the incremental-vs-scratch differential over `opts.sequences`
/// seeded edit scripts. Bases alternate between snapshotted corpus
/// entries and fresh random circuits; each script applies 1–5 edits.
/// Failures are shrunk to a minimal edit script and filed as paired
/// `_before`/`_after` corpus entries.
pub fn eco_fuzz(opts: &EcoFuzzOptions, mut progress: impl FnMut(&str)) -> EcoReport {
    let t0 = Instant::now();
    let mut report = EcoReport::default();
    // Snapshot the corpus up front: failures filed during this run must
    // not become bases for later sequences of the same run.
    let corpus_bases: Vec<CorpusEntry> = opts
        .corpus_dir
        .as_ref()
        .and_then(|d| load_dir(d).ok())
        .unwrap_or_default()
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    for index in 0..opts.sequences as u64 {
        if let Some(cap) = opts.time_cap {
            if t0.elapsed() >= cap {
                report.time_capped = true;
                progress(&format!(
                    "time cap reached after {} of {} sequences",
                    report.sequences_run, opts.sequences
                ));
                break;
            }
        }
        if opts
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        {
            report.cancelled = true;
            progress(&format!(
                "cancelled after {} of {} sequences",
                report.sequences_run, opts.sequences
            ));
            break;
        }
        let mut rng = Rng::seed_from_u64(mix64(opts.base_seed ^ mix64(index ^ 0xEC0)));
        let base = if !corpus_bases.is_empty() && index % 2 == 0 {
            let pick = (index as usize / 2) % corpus_bases.len();
            corpus_bases[pick].clone()
        } else {
            let spec = spec_for_seed(opts.base_seed ^ 0xEC0, index, opts.max_inputs);
            let net = random_circuit(spec).expect("spec is non-degenerate");
            let req = topological_delays(&net, &UnitDelay);
            CorpusEntry {
                case: TestCase { net, req },
                delays: BTreeMap::new(),
                origin: format!("eco base seed {index}"),
            }
        };
        let count = rng.range(1, 6);
        let mut fresh = 0usize;
        let mut edits = Vec::with_capacity(count);
        let mut cursor = base.clone();
        for _ in 0..count {
            let op = random_edit(&mut rng, &cursor, &mut fresh);
            if let Some(next) = apply_edit(&cursor, &op) {
                cursor = next;
                report.edits_applied += 1;
            }
            edits.push(op);
        }
        report.sequences_run += 1;
        let states = apply_sequence(&base, &edits);
        let Some(step) = first_disagreement(&states) else {
            continue;
        };
        progress(&format!(
            "sequence {index}: warm/cold reports diverged at step {step} of {}",
            edits.len()
        ));
        let (shrunk, shrunk_step) = shrink_edits(&edits, step, |candidate| {
            first_disagreement(&apply_sequence(&base, candidate))
        });
        progress(&format!(
            "sequence {index}: shrunk to {} edit(s): {}",
            shrunk.len(),
            shrunk
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
        let shrunk_states = apply_sequence(&base, &shrunk);
        let before = shrunk_states[shrunk_step.saturating_sub(1)].clone();
        let after = shrunk_states[shrunk_step].clone();
        let corpus_paths = opts.corpus_dir.as_ref().and_then(|dir| {
            let origin = format!(
                "eco fuzz sequence {index} base {:#x} ({})",
                opts.base_seed,
                shrunk
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
            let mut b = before.clone();
            b.origin = origin.clone();
            let mut a = after.clone();
            a.origin = origin;
            let pb = save(dir, &format!("eco_seed_{index:04}_before"), &b);
            let pa = save(dir, &format!("eco_seed_{index:04}_after"), &a);
            match (pb, pa) {
                (Ok(pb), Ok(pa)) => {
                    progress(&format!(
                        "sequence {index}: filed {} + {}",
                        pb.display(),
                        pa.display()
                    ));
                    Some((pb, pa))
                }
                (b, a) => {
                    progress(&format!(
                        "sequence {index}: corpus write failed: {:?} / {:?}",
                        b.err(),
                        a.err()
                    ));
                    None
                }
            }
        });
        report.failures.push(EcoFailure {
            index,
            step: shrunk_step,
            edits: shrunk,
            corpus_paths,
        });
    }
    report
}

/// Replays one filed before/after ECO pair: warms the cone cache on
/// `before`, then checks `after` composes byte-identically against a
/// cold analysis. Used by the corpus regression test.
pub fn replay_pair(before: &CorpusEntry, after: &CorpusEntry) -> Result<(), String> {
    match first_disagreement(&[before.clone(), after.clone()]) {
        None => Ok(()),
        Some(k) => Err(format!(
            "warm/cold reports diverged at state {k} ({})",
            if k == 0 { "before" } else { "after" }
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::c17;

    fn c17_entry() -> CorpusEntry {
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        CorpusEntry {
            case: TestCase { net, req },
            delays: BTreeMap::new(),
            origin: "test".to_string(),
        }
    }

    #[test]
    fn each_operator_applies_or_noops_cleanly() {
        let base = c17_entry();
        let gates = base.case.net.gate_count();

        let resized = apply_edit(
            &base,
            &EditOp::DelayResize {
                node: "G10".into(),
                ticks: 3,
            },
        )
        .unwrap();
        assert_eq!(resized.delays.get("G10"), Some(&3));

        let swapped = apply_edit(
            &base,
            &EditOp::GateSwap {
                node: "G10".into(),
                kind: GateKind::And,
            },
        )
        .unwrap();
        let g10 = swapped.case.net.find("G10").unwrap();
        assert!(matches!(
            swapped.case.net.node(g10).func,
            NodeFunc::Gate {
                kind: Some(GateKind::And),
                ..
            }
        ));

        let inserted = apply_edit(
            &base,
            &EditOp::GateInsert {
                node: "G22".into(),
                pin: 0,
                name: "eco1".into(),
            },
        )
        .unwrap();
        assert_eq!(inserted.case.net.gate_count(), gates + 1);
        assert!(inserted.case.net.find("eco1").is_some());

        let duped = apply_edit(
            &base,
            &EditOp::PoDuplicate {
                output: 0,
                name: "eco2".into(),
            },
        )
        .unwrap();
        assert_eq!(
            duped.case.net.outputs().len(),
            base.case.net.outputs().len() + 1
        );
        assert_eq!(duped.case.req.len(), base.case.req.len() + 1);
        assert_eq!(duped.case.req.last(), duped.case.req.first());

        // G10 feeds only output G22, so deleting it aliases G22's pin
        // to G10's first fanin and drops one gate.
        let deleted = apply_edit(&base, &EditOp::GateDelete { node: "G10".into() }).unwrap();
        assert_eq!(deleted.case.net.gate_count(), gates - 1);
        assert!(deleted.case.net.find("G10").is_none());

        // Stale names are clean no-ops.
        assert!(apply_edit(
            &base,
            &EditOp::GateDelete {
                node: "nope".into()
            }
        )
        .is_none());
        assert!(apply_edit(
            &base,
            &EditOp::DelayResize {
                node: "nope".into(),
                ticks: 2
            }
        )
        .is_none());
        // Swapping a 2-input gate to Mux is arity-illegal: no-op.
        assert!(apply_edit(
            &base,
            &EditOp::GateSwap {
                node: "G10".into(),
                kind: GateKind::Mux
            }
        )
        .is_none());
    }

    #[test]
    fn delete_prunes_stale_delay_overrides() {
        let mut base = c17_entry();
        base.delays.insert("G10".to_string(), 4);
        let deleted = apply_edit(&base, &EditOp::GateDelete { node: "G10".into() }).unwrap();
        assert!(!deleted.delays.contains_key("G10"));
        // The filed entry must round-trip: the parser rejects overrides
        // naming unknown nodes.
        let text = crate::corpus::to_bench(&deleted);
        crate::corpus::parse_entry(&text).unwrap();
    }

    #[test]
    fn edit_scripts_replay_deterministically() {
        let base = c17_entry();
        let run = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let mut fresh = 0usize;
            let mut edits = Vec::new();
            let mut cursor = base.clone();
            for _ in 0..5 {
                let op = random_edit(&mut rng, &cursor, &mut fresh);
                if let Some(next) = apply_edit(&cursor, &op) {
                    cursor = next;
                }
                edits.push(op);
            }
            (edits, crate::corpus::to_bench(&cursor))
        };
        let (e1, s1) = run(42);
        let (e2, s2) = run(42);
        assert_eq!(e1, e2);
        assert_eq!(s1, s2);
        let (e3, _) = run(43);
        assert_ne!(e1, e3, "different seeds draw different scripts");
    }

    #[test]
    fn warm_and_cold_reports_agree_across_an_edit_sequence() {
        let base = c17_entry();
        let edits = vec![
            EditOp::DelayResize {
                node: "G10".into(),
                ticks: 3,
            },
            EditOp::GateInsert {
                node: "G22".into(),
                pin: 1,
                name: "eco1".into(),
            },
            EditOp::PoDuplicate {
                output: 1,
                name: "eco2".into(),
            },
            EditOp::GateSwap {
                node: "G16".into(),
                kind: GateKind::Nor,
            },
        ];
        let states = apply_sequence(&base, &edits);
        assert_eq!(states.len(), edits.len() + 1);
        assert_eq!(first_disagreement(&states), None);
        assert!(replay_pair(&states[0], &states[states.len() - 1]).is_ok());
    }

    #[test]
    fn shrinker_minimises_against_an_artificial_predicate() {
        let edits = vec![
            EditOp::DelayResize {
                node: "a".into(),
                ticks: 1,
            },
            EditOp::GateDelete { node: "b".into() },
            EditOp::DelayResize {
                node: "c".into(),
                ticks: 2,
            },
            EditOp::GateDelete { node: "d".into() },
        ];
        // "Fails" iff the script still contains a GateDelete; the
        // failing step is the position of the first one.
        let fails = |script: &[EditOp]| {
            script
                .iter()
                .position(|e| matches!(e, EditOp::GateDelete { .. }))
                .map(|p| p + 1)
        };
        let (shrunk, step) = shrink_edits(&edits, 4, fails);
        assert_eq!(shrunk.len(), 1);
        assert!(matches!(shrunk[0], EditOp::GateDelete { .. }));
        assert_eq!(step, 1);
    }

    #[test]
    fn small_eco_fuzz_run_is_clean() {
        let opts = EcoFuzzOptions {
            sequences: 6,
            base_seed: 0xEC0,
            max_inputs: 5,
            ..Default::default()
        };
        let mut lines = Vec::new();
        let report = eco_fuzz(&opts, |l| lines.push(l.to_string()));
        assert_eq!(report.sequences_run, 6);
        assert!(report.edits_applied > 0, "some edits must apply");
        assert!(
            report.failures.is_empty(),
            "incremental differential failed: {lines:?} {:?}",
            report.failures
        );
    }

    #[test]
    fn po_duplicate_keeps_req_alignment() {
        let base = c17_entry();
        let duped = apply_edit(
            &base,
            &EditOp::PoDuplicate {
                output: 1,
                name: "eco9".into(),
            },
        )
        .unwrap();
        assert_eq!(duped.case.req.len(), duped.case.net.outputs().len());
        assert_eq!(duped.case.req[2], base.case.req[1]);
        // And the duplicated cone is isomorphic modulo the extra buf:
        // analysis still succeeds end to end.
        let model = duped.delay_model();
        let slices = slice_cones(&duped.case.net, &model, &duped.case.req);
        assert_eq!(slices.len(), 3);
    }
}
