//! Greedy test-case minimisation for failing netlists.
//!
//! Given a failing [`TestCase`] (one on which some differential check
//! fires), the shrinker repeatedly tries structural reductions and
//! keeps any that still fail, until no reduction applies:
//!
//! 1. **Drop a primary output** — re-check on the cone of the
//!    remaining outputs with the matching required-time slice.
//! 2. **Bypass a gate** — replace every use of a gate by one of its
//!    fanins, then prune nodes no longer feeding an output.
//! 3. **Ground a primary input** — replace an input by a constant,
//!    shrinking the minterm space.
//!
//! Every accepted step strictly decreases `outputs + inputs + nodes`,
//! so the loop terminates; the result is a local minimum, which in
//! practice is a handful of gates — small enough to read, and to store
//! in `netlists/corpus/`.

use std::collections::HashMap;

use xrta_network::{GateKind, Network, NodeFunc, NodeId};
use xrta_timing::Time;

/// A netlist plus the per-output required times a check runs against.
#[derive(Clone, Debug)]
pub struct TestCase {
    /// The circuit.
    pub net: Network,
    /// Required time per primary output, aligned with `net.outputs()`.
    pub req: Vec<Time>,
}

impl TestCase {
    /// Reduction-progress metric (strictly decreases per accepted step).
    fn size(&self) -> usize {
        self.net.outputs().len() + self.net.inputs().len() + self.net.node_count()
    }
}

/// How a node is rewritten during a bypass/grounding rebuild.
enum Rewrite {
    /// Replace the node by (the image of) another, earlier node.
    Alias(NodeId),
    /// Replace the node by a constant gate.
    Ground(bool),
}

/// Rebuilds `net` with one node rewritten, then prunes everything that
/// no longer feeds an output. Returns `None` when the rewrite would
/// merge two primary outputs (the required-time vector could no longer
/// be kept aligned).
fn rebuild(net: &Network, victim: NodeId, rewrite: &Rewrite) -> Option<Network> {
    let mut out = Network::new(net.name().to_string());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for id in net.node_ids() {
        let n = net.node(id);
        if id == victim {
            let new = match rewrite {
                Rewrite::Alias(r) => *map.get(r)?,
                Rewrite::Ground(v) => {
                    let kind = if *v {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    out.add_gate(n.name.clone(), kind, &[]).ok()?
                }
            };
            map.insert(id, new);
            continue;
        }
        let new = match &n.func {
            NodeFunc::Input => out.add_input(n.name.clone()).ok()?,
            NodeFunc::Gate { table, kind } => {
                let fanins: Vec<NodeId> = n
                    .fanins
                    .iter()
                    .map(|f| map.get(f).copied())
                    .collect::<Option<_>>()?;
                match kind {
                    Some(k) => out.add_gate(n.name.clone(), *k, &fanins).ok()?,
                    None => out.add_table(n.name.clone(), table.clone(), &fanins).ok()?,
                }
            }
        };
        map.insert(id, new);
    }
    let new_outputs: Vec<NodeId> = net
        .outputs()
        .iter()
        .map(|o| map.get(o).copied())
        .collect::<Option<_>>()?;
    let mut seen = new_outputs.clone();
    seen.sort();
    seen.dedup();
    if seen.len() != new_outputs.len() {
        return None; // outputs would merge
    }
    for &o in &new_outputs {
        out.mark_output(o);
    }
    // Prune gates and inputs that no longer feed any output.
    let (pruned, _) = out.extract_cone(&new_outputs);
    Some(pruned)
}

/// One round of candidate reductions, lazily materialised.
fn candidates(case: &TestCase) -> Vec<TestCase> {
    let net = &case.net;
    let mut out = Vec::new();
    // 1. Drop one primary output (keeping at least one).
    if net.outputs().len() > 1 {
        for k in 0..net.outputs().len() {
            let keep: Vec<NodeId> = net
                .outputs()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != k)
                .map(|(_, &o)| o)
                .collect();
            let (cone, _) = net.extract_cone(&keep);
            let req: Vec<Time> = case
                .req
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != k)
                .map(|(_, &t)| t)
                .collect();
            out.push(TestCase { net: cone, req });
        }
    }
    // 2. Bypass one gate by one of its (distinct) fanins.
    for id in net.node_ids() {
        let n = net.node(id);
        if n.is_input() {
            continue;
        }
        let mut tried: Vec<NodeId> = Vec::new();
        for &f in &n.fanins {
            if tried.contains(&f) {
                continue;
            }
            tried.push(f);
            if let Some(reduced) = rebuild(net, id, &Rewrite::Alias(f)) {
                out.push(TestCase {
                    net: reduced,
                    req: case.req.clone(),
                });
            }
        }
    }
    // 3. Ground one primary input.
    for &pi in net.inputs() {
        for v in [false, true] {
            if let Some(reduced) = rebuild(net, pi, &Rewrite::Ground(v)) {
                out.push(TestCase {
                    net: reduced,
                    req: case.req.clone(),
                });
            }
        }
    }
    out
}

/// Greedily minimises a failing test case.
///
/// `fails` must return `true` on `case` itself (the shrinker asserts
/// this); the returned case also fails and admits no further one-step
/// reduction.
pub fn shrink(case: &TestCase, mut fails: impl FnMut(&TestCase) -> bool) -> TestCase {
    assert!(fails(case), "shrink needs a failing starting point");
    let mut current = case.clone();
    'outer: loop {
        for cand in candidates(&current) {
            if cand.size() < current.size() && fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::c17;
    use xrta_timing::{topological_delays, UnitDelay};

    #[test]
    fn shrinks_to_single_gate_under_trivial_predicate() {
        // "Fails whenever any gate remains": minimum is one gate.
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        let case = TestCase { net, req };
        let small = shrink(&case, |c| c.net.gate_count() >= 1);
        assert_eq!(small.net.gate_count(), 1);
        assert_eq!(small.net.outputs().len(), 1);
        assert_eq!(small.req.len(), 1);
    }

    #[test]
    fn preserves_a_semantic_property_while_shrinking() {
        // Shrink while "some output evaluates to 1 on the all-ones
        // minterm" holds; the reduced case still satisfies it.
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        let case = TestCase { net, req };
        let holds = |c: &TestCase| {
            let ones = vec![true; c.net.inputs().len()];
            c.net.eval(&ones).iter().any(|&v| v)
        };
        if !holds(&case) {
            return; // property must hold initially for this exercise
        }
        let small = shrink(&case, holds);
        assert!(holds(&small));
        assert!(small.net.node_count() <= case.net.node_count());
    }

    #[test]
    fn rebuild_refuses_to_merge_outputs() {
        // Two outputs that collapse onto the same node after a bypass.
        let mut net = Network::new("m");
        let a = net.add_input("a").unwrap();
        let b1 = net.add_gate("b1", GateKind::Buf, &[a]).unwrap();
        let b2 = net.add_gate("b2", GateKind::Buf, &[b1]).unwrap();
        net.mark_output(b1);
        net.mark_output(b2);
        assert!(rebuild(&net, b2, &Rewrite::Alias(b1)).is_none());
        // But bypassing a non-output-merging gate works.
        assert!(rebuild(&net, b1, &Rewrite::Alias(a)).is_some());
    }
}
