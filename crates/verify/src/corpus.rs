//! Regression corpus: shrunk failing netlists on disk.
//!
//! Corpus entries are ordinary ISCAS-89 `.bench` files with a few
//! `# xrta-corpus:` comment directives carrying the metadata a replay
//! needs — the required-time vector and a human-readable origin line:
//!
//! ```text
//! # xrta-corpus: v1
//! # xrta-corpus: req 2 3 INF
//! # xrta-corpus: delays g1=2 g5=3
//! # xrta-corpus: origin fuzz seed 42 (approx2-soundness)
//! INPUT(x0)
//! ...
//! ```
//!
//! `parse_bench` already ignores `#` comments, so the files load in any
//! bench-aware tool; the directives are parsed separately here. Missing
//! `req` defaults to the topological delays (the experimental protocol
//! everywhere else in the workspace). The optional `delays` directive
//! carries sparse per-gate delay overrides by node name (everything
//! else stays at the unit default) — the ECO fuzzer's delay-resize
//! edits need them to survive a round trip through disk.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use xrta_network::{parse_bench, write_bench};
use xrta_timing::{topological_delays, TableDelay, Time, UnitDelay};

use crate::shrink::TestCase;

/// One corpus entry: a shrunk test case plus provenance.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The reduced test case.
    pub case: TestCase,
    /// Sparse per-gate delay overrides by node name; absent nodes keep
    /// the unit default. Ordered so serialisation is deterministic.
    pub delays: BTreeMap<String, i64>,
    /// Where the failure came from (seed, violated check).
    pub origin: String,
}

impl CorpusEntry {
    /// The delay model this entry replays under: unit delays with the
    /// entry's sparse overrides applied.
    pub fn delay_model(&self) -> TableDelay {
        let mut model = TableDelay::with_default(&self.case.net, 1);
        for id in self.case.net.node_ids() {
            if let Some(&t) = self.delays.get(&self.case.net.node(id).name) {
                model.set(id, t);
            }
        }
        model
    }
}

fn time_token(t: Time) -> String {
    if t.is_inf() {
        "INF".to_string()
    } else if t.is_neg_inf() {
        "-INF".to_string()
    } else {
        t.ticks().to_string()
    }
}

fn parse_time_token(tok: &str) -> Result<Time, String> {
    match tok {
        "INF" => Ok(Time::INF),
        "-INF" => Ok(Time::NEG_INF),
        _ => tok
            .parse::<i64>()
            .map(Time::new)
            .map_err(|e| format!("bad time {tok:?}: {e}")),
    }
}

/// Serialises an entry to `.bench` text with corpus directives.
pub fn to_bench(entry: &CorpusEntry) -> String {
    let mut out = String::new();
    out.push_str("# xrta-corpus: v1\n");
    out.push_str("# xrta-corpus: req");
    for &t in &entry.case.req {
        out.push(' ');
        out.push_str(&time_token(t));
    }
    out.push('\n');
    if !entry.delays.is_empty() {
        out.push_str("# xrta-corpus: delays");
        for (name, ticks) in &entry.delays {
            out.push_str(&format!(" {name}={ticks}"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "# xrta-corpus: origin {}\n",
        entry.origin.replace('\n', " ")
    ));
    out.push_str(&write_bench(&entry.case.net));
    out
}

/// Parses `.bench` text (with or without corpus directives) into an
/// entry. Without a `req` directive the topological delays are used.
pub fn parse_entry(text: &str) -> Result<CorpusEntry, String> {
    let net = parse_bench(text).map_err(|e| format!("bench: {e}"))?;
    let mut req: Option<Vec<Time>> = None;
    let mut delays = BTreeMap::new();
    let mut origin = String::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("# xrta-corpus:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(times) = rest.strip_prefix("req") {
            let parsed: Result<Vec<Time>, String> =
                times.split_whitespace().map(parse_time_token).collect();
            req = Some(parsed?);
        } else if let Some(pairs) = rest.strip_prefix("delays") {
            for pair in pairs.split_whitespace() {
                let (name, ticks) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad delays token {pair:?}"))?;
                let ticks: i64 = ticks
                    .parse()
                    .map_err(|e| format!("bad delay for {name:?}: {e}"))?;
                delays.insert(name.to_string(), ticks);
            }
        } else if let Some(o) = rest.strip_prefix("origin") {
            origin = o.trim().to_string();
        }
    }
    for name in delays.keys() {
        if !net.node_ids().any(|id| &net.node(id).name == name) {
            return Err(format!("delays directive names unknown node {name:?}"));
        }
    }
    let req = match req {
        Some(r) => {
            if r.len() != net.outputs().len() {
                return Err(format!(
                    "req directive has {} entries for {} outputs",
                    r.len(),
                    net.outputs().len()
                ));
            }
            r
        }
        None => topological_delays(&net, &UnitDelay),
    };
    Ok(CorpusEntry {
        case: TestCase { net, req },
        delays,
        origin,
    })
}

/// Loads every `.bench` entry in a directory, sorted by file name.
/// A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "bench"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let text =
            std::fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        let entry = parse_entry(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        out.push((p, entry));
    }
    Ok(out)
}

/// Writes an entry into `dir` under a sanitised, collision-free file
/// name derived from `stem`. Creates the directory if needed.
pub fn save(dir: &Path, stem: &str, entry: &CorpusEntry) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let clean: String = stem
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut path = dir.join(format!("{clean}.bench"));
    let mut k = 1;
    while path.exists() {
        k += 1;
        path = dir.join(format!("{clean}-{k}.bench"));
    }
    // Atomic: a crash (or a chaos-test SIGKILL) mid-write must never
    // leave a truncated reproducer that later replays as a parse error.
    xrta_robust::fsio::atomic_write(&path, to_bench(entry).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::c17;

    #[test]
    fn round_trips_req_and_origin() {
        let net = c17();
        let req = vec![Time::new(2), Time::INF];
        assert_eq!(req.len(), net.outputs().len());
        let entry = CorpusEntry {
            case: TestCase {
                net,
                req: req.clone(),
            },
            delays: BTreeMap::from([("G10".to_string(), 3), ("G22".to_string(), 2)]),
            origin: "unit test".to_string(),
        };
        let text = to_bench(&entry);
        let back = parse_entry(&text).unwrap();
        assert_eq!(back.case.req, req);
        assert_eq!(back.delays, entry.delays);
        assert_eq!(back.origin, "unit test");
        assert_eq!(back.case.net.inputs().len(), entry.case.net.inputs().len());
        let ones = vec![true; entry.case.net.inputs().len()];
        assert_eq!(back.case.net.eval(&ones), entry.case.net.eval(&ones));
    }

    #[test]
    fn missing_req_defaults_to_topological_delays() {
        let net = c17();
        let text = write_bench(&net);
        let entry = parse_entry(&text).unwrap();
        assert_eq!(
            entry.case.req,
            topological_delays(&entry.case.net, &UnitDelay)
        );
    }

    #[test]
    fn mismatched_req_width_is_rejected() {
        let net = c17();
        let mut text = String::from("# xrta-corpus: req 1\n");
        text.push_str(&write_bench(&net));
        assert!(parse_entry(&text).is_err());
    }

    #[test]
    fn delays_directive_builds_the_model_and_rejects_unknown_nodes() {
        let net = c17();
        let mut text = String::from("# xrta-corpus: delays G10=4\n");
        text.push_str(&write_bench(&net));
        let entry = parse_entry(&text).unwrap();
        let model = entry.delay_model();
        use xrta_timing::DelayModel;
        let g10 = entry
            .case
            .net
            .node_ids()
            .find(|&id| entry.case.net.node(id).name == "G10")
            .unwrap();
        assert_eq!(model.delay(&entry.case.net, g10), 4);

        let mut bad = String::from("# xrta-corpus: delays nosuch=4\n");
        bad.push_str(&write_bench(&c17()));
        assert!(parse_entry(&bad).is_err());
    }

    #[test]
    fn save_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("xrta_corpus_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        let entry = CorpusEntry {
            case: TestCase { net, req },
            delays: BTreeMap::new(),
            origin: "save/load".to_string(),
        };
        let p1 = save(&dir, "seed 1: bad/check", &entry).unwrap();
        let p2 = save(&dir, "seed 1: bad/check", &entry).unwrap();
        assert_ne!(p1, p2, "collision-free names");
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1.origin, "save/load");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).unwrap().is_empty(), "missing dir is empty");
    }
}
