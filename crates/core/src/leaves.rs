//! Leaf χ providers: the "only terminal cases change" modification of §4.
//!
//! Three modes per primary input:
//!
//! * **Known** — the standard false-path analysis terminal
//!   (`χ_{x,v}^t = lit(x,v)` iff `t ≥ arr(x)`), used for the `X` inputs
//!   of `N_FO` in §5.2 whose arrival times are known;
//! * **Unknown** — a fresh BDD variable per `(value, time)` leaf, the
//!   exact formulation of §4.1;
//! * **Parametric** — the α/β encoding of §4.2:
//!   `χ_{x,1}^{t_p} = x·α_1`, `χ_{x,1}^{t_{p-1}} = x·α_1α_2`, …, which
//!   bakes the ordering constraints into the structure.

use xrta_bdd::{Bdd, BddResult, FxHashMap, Ref, Var};
use xrta_chi::LeafChi;
use xrta_network::NodeId;
use xrta_timing::Time;

use crate::plan::LeafPlan;
use crate::types::{RequiredTimeTuple, ValueTimes};

/// Per-input leaf handling mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LeafMode {
    /// Known arrival time: standard terminal case.
    Known(Time),
    /// Fresh variable per (value, time): exact formulation.
    Unknown,
    /// α/β chain encoding; `value_independent` merges the two values'
    /// chains (footnote 6's more aggressive scheme).
    Parametric {
        /// Share one chain (and one merged time list) across both values.
        value_independent: bool,
    },
}

/// Identity of one unknown leaf variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafVarKey {
    /// Position in `net.inputs()`.
    pub input_pos: usize,
    /// Stability value (1 or 0).
    pub value: bool,
    /// Time point.
    pub time: Time,
}

/// Identity of one parametric (α/β) variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamVarKey {
    /// Position in `net.inputs()`.
    pub input_pos: usize,
    /// `true` for the α chain (value 1), `false` for β (value 0). In
    /// value-independent mode only `true` chains exist.
    pub value: bool,
    /// Index within the chain (`α_1` is 0).
    pub chain_index: usize,
}

/// The configurable leaf provider.
///
/// Allocate with [`PlannedLeaves::new`] *before* running the χ engine so
/// the relative BDD variable order (inputs first, then leaves/parameters)
/// is deterministic.
pub struct PlannedLeaves {
    /// One BDD variable per primary input (the `X` vector).
    pub x_vars: Vec<Var>,
    modes: Vec<LeafMode>,
    plan: LeafPlan,
    /// Unknown-mode leaf variables, in allocation order.
    pub leaf_vars: Vec<(LeafVarKey, Var)>,
    leaf_map: FxHashMap<(usize, bool, Time), Var>,
    /// Parametric-mode variables, in allocation order.
    pub param_vars: Vec<(ParamVarKey, Var)>,
    /// Chains per (input, value): chain[0] is α_1.
    chains: FxHashMap<(usize, bool), Vec<Var>>,
}

impl PlannedLeaves {
    /// Allocates all variables, *interleaved*: each input's `X` variable
    /// is immediately followed by that input's leaf or parameter
    /// variables. Keeping related variables adjacent in the BDD order is
    /// essential for block-structured circuits (an all-X-on-top order
    /// multiplies sizes across blocks).
    ///
    /// # Panics
    ///
    /// Panics if `modes.len() != plan.per_input.len()`.
    pub fn new(bdd: &mut Bdd, plan: LeafPlan, modes: Vec<LeafMode>) -> Self {
        assert_eq!(modes.len(), plan.per_input.len());
        let mut x_vars: Vec<Var> = Vec::with_capacity(plan.per_input.len());
        let mut leaf_vars = Vec::new();
        let mut leaf_map = FxHashMap::default();
        let mut param_vars = Vec::new();
        let mut chains: FxHashMap<(usize, bool), Vec<Var>> = FxHashMap::default();
        for (pos, mode) in modes.iter().enumerate() {
            x_vars.push(bdd.fresh_var());
            match mode {
                LeafMode::Known(_) => {}
                LeafMode::Unknown => {
                    for value in [true, false] {
                        for &t in plan.per_input[pos].for_value(value) {
                            let v = bdd.fresh_var();
                            leaf_vars.push((
                                LeafVarKey {
                                    input_pos: pos,
                                    value,
                                    time: t,
                                },
                                v,
                            ));
                            leaf_map.insert((pos, value, t), v);
                        }
                    }
                }
                LeafMode::Parametric { value_independent } => {
                    if *value_independent {
                        let times = plan.per_input[pos].merged();
                        let chain: Vec<Var> = (0..times.len()).map(|_| bdd.fresh_var()).collect();
                        for (ci, &v) in chain.iter().enumerate() {
                            param_vars.push((
                                ParamVarKey {
                                    input_pos: pos,
                                    value: true,
                                    chain_index: ci,
                                },
                                v,
                            ));
                        }
                        chains.insert((pos, true), chain.clone());
                        chains.insert((pos, false), chain);
                    } else {
                        for value in [true, false] {
                            let times = plan.per_input[pos].for_value(value);
                            let chain: Vec<Var> =
                                (0..times.len()).map(|_| bdd.fresh_var()).collect();
                            for (ci, &v) in chain.iter().enumerate() {
                                param_vars.push((
                                    ParamVarKey {
                                        input_pos: pos,
                                        value,
                                        chain_index: ci,
                                    },
                                    v,
                                ));
                            }
                            chains.insert((pos, value), chain);
                        }
                    }
                }
            }
        }
        PlannedLeaves {
            x_vars,
            modes,
            plan,
            leaf_vars,
            leaf_map,
            param_vars,
            chains,
        }
    }

    /// The leaf plan this provider was built from.
    pub fn plan(&self) -> &LeafPlan {
        &self.plan
    }

    /// The mode of one input.
    pub fn mode(&self, pos: usize) -> LeafMode {
        self.modes[pos]
    }

    /// All unknown-leaf variables (exact mode), in allocation order.
    pub fn leaf_var_list(&self) -> Vec<Var> {
        self.leaf_vars.iter().map(|&(_, v)| v).collect()
    }

    /// All parameter variables (parametric mode), in allocation order.
    pub fn param_var_list(&self) -> Vec<Var> {
        self.param_vars.iter().map(|&(_, v)| v).collect()
    }

    /// The sorted time list used for `(input, value)` under the input's
    /// mode (merged when value-independent).
    pub fn times_for(&self, pos: usize, value: bool) -> Vec<Time> {
        match self.modes[pos] {
            LeafMode::Parametric {
                value_independent: true,
            } => self.plan.per_input[pos].merged(),
            _ => self.plan.per_input[pos].for_value(value).to_vec(),
        }
    }

    /// Ordering-and-bound constraint for the exact (Unknown) leaves:
    ///
    /// `∅ ⊆ χ^{t_1} ⊆ … ⊆ χ^{t_p} ⊆ lit(x, v)` per input and value.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AnalysisError::Capacity`] on node-limit exhaustion.
    pub fn ordering_constraint(&self, bdd: &mut Bdd) -> BddResult<Ref> {
        let mut acc = Ref::TRUE;
        for (pos, mode) in self.modes.iter().enumerate() {
            if !matches!(mode, LeafMode::Unknown) {
                continue;
            }
            for value in [true, false] {
                let times = self.plan.per_input[pos].for_value(value);
                let mut prev: Option<Var> = None;
                for &t in times {
                    let cur = self.leaf_map[&(pos, value, t)];
                    if let Some(p) = prev {
                        // χ^{earlier} → χ^{later}
                        let pv = bdd.try_var(p)?;
                        let cv = bdd.try_var(cur)?;
                        let ncv = bdd.try_not(cv)?;
                        let bad = bdd.try_and(pv, ncv)?;
                        let ok = bdd.try_not(bad)?;
                        acc = bdd.try_and(acc, ok)?;
                    }
                    prev = Some(cur);
                }
                if let Some(last) = prev {
                    let lv = bdd.try_var(last)?;
                    let bound = if value {
                        bdd.try_var(self.x_vars[pos])?
                    } else {
                        bdd.try_nvar(self.x_vars[pos])?
                    };
                    let nb = bdd.try_not(bound)?;
                    let bad = bdd.try_and(lv, nb)?;
                    let ok = bdd.try_not(bad)?;
                    acc = bdd.try_and(acc, ok)?;
                }
            }
        }
        Ok(acc)
    }

    /// Interprets an assignment of the unknown leaf variables as a
    /// required-time tuple: per input and value, the earliest planned
    /// time whose leaf bit is 1 (∞ when none).
    ///
    /// Inputs in other modes report `∞` (unconstrained here).
    pub fn interpret_leaf_assignment(&self, assignment: impl Fn(Var) -> bool) -> RequiredTimeTuple {
        let per_input = (0..self.modes.len())
            .map(|pos| {
                if !matches!(self.modes[pos], LeafMode::Unknown) {
                    return ValueTimes::uniform(Time::INF);
                }
                let earliest = |value: bool| {
                    self.plan.per_input[pos]
                        .for_value(value)
                        .iter()
                        .copied()
                        .find(|&t| assignment(self.leaf_map[&(pos, value, t)]))
                        .unwrap_or(Time::INF)
                };
                ValueTimes {
                    value1: earliest(true),
                    value0: earliest(false),
                }
            })
            .collect();
        RequiredTimeTuple { per_input }
    }

    /// Interprets a prime of the monotone `F(α, β)` (a set of parameter
    /// variables forced to 1) as a required-time tuple: for each chain
    /// the prefix length `k` of consecutive present variables yields the
    /// deadline `t_{p−k+1}` (`∞` when `k = 0`).
    pub fn interpret_prime(&self, prime: &[Var]) -> RequiredTimeTuple {
        let in_prime = |v: Var| prime.contains(&v);
        let per_input = (0..self.modes.len())
            .map(|pos| {
                if !matches!(self.modes[pos], LeafMode::Parametric { .. }) {
                    return ValueTimes::uniform(Time::INF);
                }
                let deadline = |value: bool| {
                    let chain = &self.chains[&(pos, value)];
                    let times = self.times_for(pos, value);
                    let mut k = 0;
                    while k < chain.len() && in_prime(chain[k]) {
                        k += 1;
                    }
                    if k == 0 {
                        Time::INF
                    } else {
                        // χ^{t_{p-k+1}} = lit·α_1…α_k is forced on.
                        times[times.len() - k]
                    }
                };
                ValueTimes {
                    value1: deadline(true),
                    value0: deadline(false),
                }
            })
            .collect();
        RequiredTimeTuple { per_input }
    }
}

impl LeafChi for PlannedLeaves {
    fn leaf(
        &mut self,
        bdd: &mut Bdd,
        input_pos: usize,
        _node: NodeId,
        value: bool,
        t: Time,
    ) -> BddResult<Ref> {
        match self.modes[input_pos] {
            LeafMode::Known(arr) => {
                if t >= arr {
                    if value {
                        bdd.try_var(self.x_vars[input_pos])
                    } else {
                        bdd.try_nvar(self.x_vars[input_pos])
                    }
                } else {
                    Ok(Ref::FALSE)
                }
            }
            LeafMode::Unknown => {
                let v = *self
                    .leaf_map
                    .get(&(input_pos, value, t))
                    .unwrap_or_else(|| {
                        panic!("leaf (input {input_pos}, value {value}, t {t}) not planned")
                    });
                bdd.try_var(v)
            }
            LeafMode::Parametric { .. } => {
                let times = self.times_for(input_pos, value);
                let idx = times.iter().position(|&pt| pt == t).unwrap_or_else(|| {
                    panic!("leaf (input {input_pos}, value {value}, t {t}) not planned")
                });
                let chain = self.chains[&(input_pos, value)].clone();
                let factors = times.len() - idx; // t_p → 1 factor … t_1 → p
                let mut acc = if value {
                    bdd.try_var(self.x_vars[input_pos])?
                } else {
                    bdd.try_nvar(self.x_vars[input_pos])?
                };
                for &alpha in chain.iter().take(factors) {
                    let av = bdd.try_var(alpha)?;
                    acc = bdd.try_and(acc, av)?;
                }
                Ok(acc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_leaves;
    use xrta_network::{GateKind, Network};
    use xrta_timing::UnitDelay;

    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    #[test]
    fn unknown_mode_allocates_planned_leaves() {
        let net = fig4();
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        let mut bdd = Bdd::new();
        let leaves = PlannedLeaves::new(&mut bdd, plan, vec![LeafMode::Unknown; 2]);
        assert_eq!(leaves.x_vars.len(), 2);
        assert_eq!(leaves.leaf_vars.len(), 6, "paper's six leaf variables");
        assert!(leaves.param_vars.is_empty());
    }

    #[test]
    fn parametric_mode_allocates_chains() {
        let net = fig4();
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        let mut bdd = Bdd::new();
        let leaves = PlannedLeaves::new(
            &mut bdd,
            plan.clone(),
            vec![
                LeafMode::Parametric {
                    value_independent: false,
                };
                2
            ],
        );
        // α: x1 has 1, x2 has 2; β likewise → 6 parameters, like the
        // paper's α₁^{x1} α₁^{x2} α₂^{x2} β₁^{x1} β₁^{x2} β₂^{x2}.
        assert_eq!(leaves.param_vars.len(), 6);
        let mut bdd2 = Bdd::new();
        let vi = PlannedLeaves::new(
            &mut bdd2,
            plan,
            vec![
                LeafMode::Parametric {
                    value_independent: true,
                };
                2
            ],
        );
        assert_eq!(vi.param_vars.len(), 3, "merged chains halve the count");
    }

    #[test]
    fn ordering_constraint_enforces_chain() {
        let net = fig4();
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        let mut bdd = Bdd::new();
        let leaves = PlannedLeaves::new(&mut bdd, plan, vec![LeafMode::Unknown; 2]);
        let ord = leaves.ordering_constraint(&mut bdd).unwrap();
        // Find χ_{x2,1}^0 and χ_{x2,1}^1.
        let find = |value: bool, t: i64| {
            leaves
                .leaf_vars
                .iter()
                .find(|(k, _)| k.input_pos == 1 && k.value == value && k.time == Time::new(t))
                .map(|&(_, v)| v)
                .unwrap()
        };
        let early = find(true, 0);
        let late = find(true, 1);
        // early=1, late=0 violates χ^0 ⊆ χ^1.
        let e = bdd.var(early);
        let nl = bdd.nvar(late);
        let viol = bdd.and(e, nl);
        assert!(bdd.and(ord, viol).is_false());
        // early=1, late=1, x2=1 is fine.
        let l = bdd.var(late);
        let x2 = bdd.var(leaves.x_vars[1]);
        let both = bdd.and(e, l);
        let ok = bdd.and(both, x2);
        assert!(!bdd.and(ord, ok).is_false());
        // late=1 with x2=0 violates the bound χ ⊆ x.
        let nx2 = bdd.nvar(leaves.x_vars[1]);
        let bad = bdd.and(l, nx2);
        assert!(bdd.and(ord, bad).is_false());
    }

    #[test]
    fn prime_interpretation_prefixes() {
        let net = fig4();
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        let mut bdd = Bdd::new();
        let leaves = PlannedLeaves::new(
            &mut bdd,
            plan,
            vec![
                LeafMode::Parametric {
                    value_independent: false,
                };
                2
            ],
        );
        // Full assignment = topological times.
        let all: Vec<Var> = leaves.param_var_list();
        let t = leaves.interpret_prime(&all);
        assert_eq!(t.per_input[0].value1, Time::new(0));
        assert_eq!(t.per_input[1].value1, Time::new(0));
        // Only α₁ of x2 (prefix length 1) → deadline is the latest time.
        let x2_alpha1 = leaves
            .param_vars
            .iter()
            .find(|(k, _)| k.input_pos == 1 && k.value && k.chain_index == 0)
            .map(|&(_, v)| v)
            .unwrap();
        let t = leaves.interpret_prime(&[x2_alpha1]);
        assert_eq!(t.per_input[1].value1, Time::new(1));
        assert_eq!(t.per_input[1].value0, Time::INF);
        assert_eq!(t.per_input[0].value1, Time::INF);
        // Empty prime → all ∞.
        let t = leaves.interpret_prime(&[]);
        assert!(t
            .per_input
            .iter()
            .all(|vt| vt.value1.is_inf() && vt.value0.is_inf()));
    }

    #[test]
    fn leaf_assignment_interpretation() {
        let net = fig4();
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        let mut bdd = Bdd::new();
        let leaves = PlannedLeaves::new(&mut bdd, plan, vec![LeafMode::Unknown; 2]);
        // Set only χ_{x2,0}^1: x2 required to settle to 0 by time 1.
        let target = leaves
            .leaf_vars
            .iter()
            .find(|(k, _)| k.input_pos == 1 && !k.value && k.time == Time::new(1))
            .map(|&(_, v)| v)
            .unwrap();
        let t = leaves.interpret_leaf_assignment(|v| v == target);
        assert_eq!(t.per_input[1].value0, Time::new(1));
        assert_eq!(t.per_input[1].value1, Time::INF);
        assert_eq!(t.per_input[0].value1, Time::INF);
    }
}
