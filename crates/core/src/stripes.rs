//! Lock-striped verdict cache shared by every §4.3 oracle worker.
//!
//! The per-cone verdict caches used to live on the coordinating thread:
//! workers computed verdicts, the coordinator cached them, and a fact
//! proven by one worker only became visible to the others at the next
//! round boundary. This wrapper shards the same two cache strategies
//! ([`CacheStrategy`]) across `N` mutex-striped shards keyed by a
//! fingerprint of each cone's input-support mask, so any worker can
//! consult and extend the cache mid-round:
//!
//! - different cones hash to different stripes, so workers validating
//!   different cones never contend;
//! - a dominance verdict inserted by one worker immediately prunes
//!   every other worker's pending probes for that cone (the
//!   `oracle_calls@N ≈ oracle_calls@1` property);
//! - all stored verdicts are pure facts about `(cone, projection)`, so
//!   sharing them across threads can change *how many* oracle calls a
//!   search makes, never *what* it concludes.
//!
//! Locking is poison-tolerant: a panicking worker (already contained by
//! `catch_unwind` in the oracle) must not wedge the cache for everyone
//! else, and every stored verdict is individually sound, so recovering
//! the inner value of a poisoned mutex is safe.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Duration;

use xrta_bdd::{FxHashMap, FxHashSet};
use xrta_timing::Time;

use crate::dominance::{CacheStrategy, DominanceCache};

/// Number of lock stripes. More than any realistic worker count, so
/// contention is dominated by genuine same-cone sharing, not by hash
/// collisions between unrelated cones.
const STRIPES: usize = 16;

/// FNV-1a over a cone's support-mask words plus its index; used to pick
/// the cone's stripe. The index is mixed in so cones with identical
/// supports (common in replicated output blocks) still spread out.
pub fn support_fingerprint(cone: usize, mask: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(cone as u64);
    for &w in mask {
        mix(w);
    }
    h
}

/// One stripe's storage: both strategies are kept so the cache can back
/// whichever [`CacheStrategy`] the search selected.
#[derive(Default)]
struct Shard {
    /// Exact-key verdicts, `(cone, projection) → safe`.
    exact: FxHashMap<(usize, Vec<Time>), bool>,
    /// Dominance frontiers per cone.
    dom: FxHashMap<usize, DominanceCache>,
    /// Keys some thread is currently solving (single-flight dedup):
    /// a second thread asking for the same verdict waits for the
    /// owner's [`StripedVerdictCache::insert`] / `abandon` instead of
    /// running a duplicate χ engine.
    pending: FxHashSet<(usize, Vec<Time>)>,
}

/// Outcome of [`StripedVerdictCache::claim`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Claim {
    /// The verdict was already cached (possibly after waiting for
    /// another thread's in-flight solve).
    Hit(bool),
    /// The caller owns this key: it must solve and then either
    /// [`StripedVerdictCache::insert`] the verdict or
    /// [`StripedVerdictCache::abandon`] the claim — every exit path,
    /// or waiters stall until their timeout.
    Owner,
    /// Another thread has held the key longer than the patience cap;
    /// the caller may solve redundantly (sound — verdicts are pure).
    TimedOut,
}

/// A striped, thread-shared wrapper over the per-cone verdict caches of
/// the §4.3 oracle. See the module docs.
pub struct StripedVerdictCache {
    strategy: CacheStrategy,
    shards: Vec<Mutex<Shard>>,
    /// One condvar per stripe, signalled whenever an in-flight key
    /// resolves (insert) or is abandoned.
    resolved: Vec<Condvar>,
    /// Precomputed stripe per cone (`support_fingerprint % STRIPES`).
    stripe_of: Vec<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Lock acquisitions that found the stripe held by another thread
    /// (`try_lock` failed and the caller had to wait).
    contention: AtomicUsize,
    /// Bytes charged to the process meter's `Stripes` account for the
    /// verdicts currently cached (estimate: per-entry base plus the
    /// projection payload).
    mem_bytes: AtomicU64,
}

/// Estimated per-verdict overhead beyond the projection payload: map
/// entry header, key tuple and hashbrown slot bookkeeping.
const ENTRY_BASE_BYTES: u64 = 64;

/// Reclamation is skipped while the cache holds less than this — a
/// soft-pressure sweep that frees a few kilobytes only costs refills.
const RECLAIM_FLOOR_BYTES: u64 = 1 << 20;

/// Poison-tolerant lock: a worker panic is already contained and its
/// partial verdicts are individually sound, so keep serving.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl StripedVerdictCache {
    /// Creates a cache for `fingerprints.len()` cones; `fingerprints`
    /// come from [`support_fingerprint`].
    pub fn new(strategy: CacheStrategy, fingerprints: &[u64]) -> Self {
        StripedVerdictCache {
            strategy,
            shards: (0..STRIPES).map(|_| Mutex::new(Shard::default())).collect(),
            resolved: (0..STRIPES).map(|_| Condvar::new()).collect(),
            stripe_of: fingerprints
                .iter()
                .map(|&f| (f % STRIPES as u64) as usize)
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            contention: AtomicUsize::new(0),
            mem_bytes: AtomicU64::new(0),
        }
    }

    fn lock_stripe(&self, cone: usize) -> MutexGuard<'_, Shard> {
        let m = &self.shards[self.stripe_of[cone]];
        match m.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                plock(m)
            }
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Answers `(cone, proj)` from the cache, if it can. Counts one hit
    /// or miss.
    pub fn query(&self, cone: usize, proj: &[Time]) -> Option<bool> {
        let shard = self.lock_stripe(cone);
        let verdict = match self.strategy {
            CacheStrategy::Exact => shard.exact.get(&(cone, proj.to_vec())).copied(),
            CacheStrategy::Dominance => shard.dom.get(&cone).and_then(|c| c.peek(proj)),
        };
        drop(shard);
        match verdict {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        verdict
    }

    /// Records an oracle verdict for `(cone, proj)`, releasing any
    /// single-flight claim on the key and waking its waiters.
    pub fn insert(&self, cone: usize, proj: &[Time], safe: bool) {
        let entry_bytes = ENTRY_BASE_BYTES + std::mem::size_of_val(proj) as u64;
        xrta_robust::mem::global().charge(xrta_robust::mem::Subsystem::Stripes, entry_bytes);
        self.mem_bytes.fetch_add(entry_bytes, Ordering::Relaxed);
        let stripe = self.stripe_of[cone];
        let mut shard = self.lock_stripe(cone);
        match self.strategy {
            CacheStrategy::Exact => {
                shard.exact.insert((cone, proj.to_vec()), safe);
            }
            CacheStrategy::Dominance => shard.dom.entry(cone).or_default().insert(proj, safe),
        }
        if shard.pending.remove(&(cone, proj.to_vec())) {
            drop(shard);
            self.resolved[stripe].notify_all();
        }
    }

    /// Single-flight lookup: a cached verdict answers immediately; an
    /// unclaimed key makes the caller the owner (it must solve, then
    /// [`StripedVerdictCache::insert`] or
    /// [`StripedVerdictCache::abandon`]); a key claimed by another
    /// thread blocks until that thread resolves it. Counts one hit or
    /// miss, like [`StripedVerdictCache::query`].
    pub fn claim(&self, cone: usize, proj: &[Time]) -> Claim {
        let stripe = self.stripe_of[cone];
        let mut shard = self.lock_stripe(cone);
        // Patience cap: claims are only held across one bounded solve
        // and every exit path resolves them, so this is a belt against
        // bugs, not an expected path.
        for _ in 0..40 {
            let verdict = match self.strategy {
                CacheStrategy::Exact => shard.exact.get(&(cone, proj.to_vec())).copied(),
                CacheStrategy::Dominance => shard.dom.get(&cone).and_then(|c| c.peek(proj)),
            };
            if let Some(v) = verdict {
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(v);
            }
            if shard.pending.insert((cone, proj.to_vec())) {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Claim::Owner;
            }
            let (guard, _) = self.resolved[stripe]
                .wait_timeout(shard, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            shard = guard;
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Claim::TimedOut
    }

    /// Releases a [`Claim::Owner`] without a verdict (interrupt, budget
    /// cut): wakes waiters so one of them claims ownership instead.
    pub fn abandon(&self, cone: usize, proj: &[Time]) {
        let stripe = self.stripe_of[cone];
        let mut shard = self.lock_stripe(cone);
        if shard.pending.remove(&(cone, proj.to_vec())) {
            drop(shard);
            self.resolved[stripe].notify_all();
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that fell through to the oracle.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lock acquisitions that had to wait for another thread.
    pub fn contention(&self) -> usize {
        self.contention.load(Ordering::Relaxed)
    }

    /// Drops every cached verdict and releases its meter charge,
    /// returning the bytes freed. Sound under memory pressure: verdicts
    /// are pure facts the oracle can re-derive, and in-flight
    /// single-flight claims (`pending`) are left untouched so no waiter
    /// stalls. A sweep below [`RECLAIM_FLOOR_BYTES`] is skipped — it
    /// would trade refill work for negligible relief.
    pub fn reclaim(&self) -> u64 {
        if self.mem_bytes.load(Ordering::Relaxed) < RECLAIM_FLOOR_BYTES {
            return 0;
        }
        for shard in &self.shards {
            let mut s = plock(shard);
            s.exact.clear();
            s.exact.shrink_to_fit();
            s.dom.clear();
            s.dom.shrink_to_fit();
        }
        let freed = self.mem_bytes.swap(0, Ordering::Relaxed);
        xrta_robust::mem::global().release(xrta_robust::mem::Subsystem::Stripes, freed);
        freed
    }
}

impl Drop for StripedVerdictCache {
    fn drop(&mut self) {
        let charged = self.mem_bytes.swap(0, Ordering::Relaxed);
        xrta_robust::mem::global().release(xrta_robust::mem::Subsystem::Stripes, charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[i64]) -> Vec<Time> {
        v.iter().map(|&x| Time::new(x)).collect()
    }

    #[test]
    fn exact_strategy_round_trips_per_cone() {
        let fps: Vec<u64> = (0..4)
            .map(|c| support_fingerprint(c, &[c as u64]))
            .collect();
        let cache = StripedVerdictCache::new(CacheStrategy::Exact, &fps);
        cache.insert(0, &t(&[1, 2]), true);
        cache.insert(1, &t(&[1, 2]), false);
        assert_eq!(cache.query(0, &t(&[1, 2])), Some(true));
        assert_eq!(cache.query(1, &t(&[1, 2])), Some(false));
        // Exact keys do not generalize.
        assert_eq!(cache.query(0, &t(&[0, 0])), None);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn dominance_strategy_generalizes_within_a_cone_only() {
        let fps: Vec<u64> = (0..2).map(|c| support_fingerprint(c, &[0b11])).collect();
        let cache = StripedVerdictCache::new(CacheStrategy::Dominance, &fps);
        cache.insert(0, &t(&[3, 3]), true);
        assert_eq!(cache.query(0, &t(&[1, 2])), Some(true));
        assert_eq!(cache.query(1, &t(&[1, 2])), None, "cones are independent");
        cache.insert(0, &t(&[5, 5]), false);
        assert_eq!(cache.query(0, &t(&[9, 5])), Some(false));
    }

    #[test]
    fn identical_supports_still_spread_by_cone_index() {
        let mask = [0xdead_beefu64, 0x1234];
        let a = support_fingerprint(0, &mask);
        let b = support_fingerprint(1, &mask);
        assert_ne!(a, b);
    }

    #[test]
    fn single_flight_waiter_gets_owners_verdict() {
        let fps = [support_fingerprint(0, &[0b1])];
        let cache = StripedVerdictCache::new(CacheStrategy::Exact, &fps);
        assert_eq!(cache.claim(0, &t(&[7])), Claim::Owner);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.claim(0, &t(&[7])));
            // Give the waiter time to park, then resolve.
            std::thread::sleep(std::time::Duration::from_millis(30));
            cache.insert(0, &t(&[7]), true);
            assert_eq!(waiter.join().unwrap(), Claim::Hit(true));
        });
        // The key is resolved: later claims hit immediately.
        assert_eq!(cache.claim(0, &t(&[7])), Claim::Hit(true));
    }

    #[test]
    fn abandon_promotes_a_waiter_to_owner() {
        let fps = [support_fingerprint(0, &[0b1])];
        let cache = StripedVerdictCache::new(CacheStrategy::Dominance, &fps);
        assert_eq!(cache.claim(0, &t(&[3])), Claim::Owner);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.claim(0, &t(&[3])));
            std::thread::sleep(std::time::Duration::from_millis(30));
            cache.abandon(0, &t(&[3]));
            // The waiter inherits ownership (no verdict was stored).
            assert_eq!(waiter.join().unwrap(), Claim::Owner);
        });
    }

    #[test]
    fn reclaim_frees_verdicts_but_respects_the_floor() {
        let fps: Vec<u64> = (0..4)
            .map(|c| support_fingerprint(c, &[c as u64]))
            .collect();
        let cache = StripedVerdictCache::new(CacheStrategy::Exact, &fps);
        cache.insert(0, &t(&[1, 2]), true);
        // Below the floor: the sweep is a no-op and verdicts survive.
        assert_eq!(cache.reclaim(), 0);
        assert_eq!(cache.query(0, &t(&[1, 2])), Some(true));
        // Push past the floor, then the sweep really clears.
        let needed = (RECLAIM_FLOOR_BYTES / ENTRY_BASE_BYTES) as i64 + 1;
        for i in 0..needed {
            cache.insert((i % 4) as usize, &t(&[i, i + 1]), true);
        }
        assert!(cache.reclaim() >= RECLAIM_FLOOR_BYTES);
        assert_eq!(cache.query(0, &t(&[1, 2])), None, "verdicts were swept");
    }

    /// Seeded thread fuzz against a ground-truth monotone predicate:
    /// concurrent inserts and lookups must lose no verdict and must
    /// never answer against the ground truth (no false dominance hits).
    #[test]
    fn concurrent_stress_no_lost_or_false_verdicts() {
        const THREADS: usize = 8;
        const POINTS: usize = 120;
        const CONES: usize = 5;
        // Ground truth: a point is "safe" iff its coordinate sum stays
        // under the cone's threshold — monotone decreasing, like the
        // real oracle.
        let threshold = |cone: usize| 10 + 3 * cone as i64;
        let safe =
            |cone: usize, p: &[Time]| p.iter().map(|x| x.ticks()).sum::<i64>() <= threshold(cone);
        for strategy in [CacheStrategy::Exact, CacheStrategy::Dominance] {
            let fps: Vec<u64> = (0..CONES)
                .map(|c| support_fingerprint(c, &[0b111]))
                .collect();
            let cache = StripedVerdictCache::new(strategy, &fps);
            // Deterministic per-thread point streams (xorshift).
            let points_for = |seed: u64| -> Vec<(usize, Vec<Time>)> {
                let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                (0..POINTS)
                    .map(|_| {
                        let cone = (next() % CONES as u64) as usize;
                        let p: Vec<Time> = (0..3).map(|_| Time::new((next() % 8) as i64)).collect();
                        (cone, p)
                    })
                    .collect()
            };
            std::thread::scope(|scope| {
                for w in 0..THREADS {
                    let cache = &cache;
                    scope.spawn(move || {
                        for (cone, p) in points_for(w as u64 + 1) {
                            let truth = safe(cone, &p);
                            if let Some(v) = cache.query(cone, &p) {
                                assert_eq!(v, truth, "false hit for cone {cone} at {p:?}");
                            }
                            cache.insert(cone, &p, truth);
                        }
                    });
                }
            });
            // No lost verdicts: every point any thread inserted must now
            // answer, and answer the ground truth.
            for w in 0..THREADS {
                for (cone, p) in points_for(w as u64 + 1) {
                    assert_eq!(
                        cache.query(cone, &p),
                        Some(safe(cone, &p)),
                        "lost or wrong verdict for cone {cone} at {p:?} ({strategy:?})"
                    );
                }
            }
            assert!(cache.hits() > 0);
        }
    }
}
