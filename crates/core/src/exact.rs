//! The exact required-time relation (§4.1).
//!
//! χ functions of every primary output are built with *unknown leaf
//! variables* at the primary inputs; the Boolean relation
//!
//! ```text
//! F(X, χ_X) = Π_z (χ_{z,1}^{req(z)} ≡ z(X)) · (χ_{z,0}^{req(z)} ≡ ¬z(X)) · ordering(χ_X)
//! ```
//!
//! captures **every** permissible temporal behaviour of the inputs. Its
//! minimal elements per input minterm (w.r.t. the leaf variables) are the
//! *latest* required-time conditions.

use xrta_bdd::{Bdd, Ref, Var};
use xrta_chi::ChiBddEngine;
use xrta_network::{GlobalBdds, Network};
use xrta_timing::{required_times, DelayModel, Time};

use crate::governor::{AnalysisError, Budget};
use crate::leaves::{LeafMode, LeafVarKey, PlannedLeaves};
use crate::plan::plan_leaves;
use crate::types::RequiredTimeTuple;

/// Options for the exact analysis.
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// BDD node limit; exceeding it aborts with
    /// [`AnalysisError::Capacity`] (the paper's `memory out` rows).
    pub node_limit: usize,
    /// Run sifting reorder after construction (the paper enables dynamic
    /// reordering for its exact runs).
    pub reorder: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            node_limit: 1 << 22,
            reorder: false,
        }
    }
}

/// Output of the exact analysis: the full relation and its latest
/// (minimal) sub-relation, plus everything needed to interpret them.
pub struct ExactAnalysis {
    /// The BDD manager holding all functions.
    pub bdd: Bdd,
    /// Input variables `X`, aligned with `net.inputs()`.
    pub x_vars: Vec<Var>,
    /// Unknown leaf variables with their identities.
    pub leaf_vars: Vec<(LeafVarKey, Var)>,
    /// The full permissible relation `F(X, χ_X)`.
    pub relation: Ref,
    /// The latest-required-time sub-relation (minimal elements).
    pub latest: Ref,
    /// Topological required times at the inputs (`r⊥`), for reference.
    pub topo_required: Vec<Time>,
    leaves: PlannedLeaves,
}

/// Runs the exact analysis of §4.1.
///
/// # Errors
///
/// Returns [`AnalysisError::Capacity`] when the BDD node limit is
/// exceeded — the behaviour the paper reports as `memory out` on larger
/// MCNC circuits.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn exact_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: ExactOptions,
) -> Result<ExactAnalysis, AnalysisError> {
    exact_required_times_governed(net, model, output_required, options, &Budget::unlimited())
}

/// Budget-governed form of [`exact_required_times`]: the BDD manager
/// additionally honours the budget's deadline, cancel flag and (the
/// tighter of the two) node limits, failing with the matching
/// [`AnalysisError`] instead of running away.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn exact_required_times_governed<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: ExactOptions,
    budget: &Budget,
) -> Result<ExactAnalysis, AnalysisError> {
    assert_eq!(output_required.len(), net.outputs().len());
    let mut bdd = Bdd::with_node_limit(budget.effective_node_limit(options.node_limit));
    bdd.set_deadline(budget.deadline());
    bdd.set_cancel_flag(Some(budget.cancel_flag()));
    bdd.set_mem_limit(budget.mem_limit());
    let plan = plan_leaves(net, model, output_required, |_| true);
    let leaves = PlannedLeaves::new(&mut bdd, plan, vec![LeafMode::Unknown; net.inputs().len()]);
    let x_vars = leaves.x_vars.clone();
    let globals = GlobalBdds::build_with_vars(&mut bdd, net, &x_vars)?;

    let mut engine = ChiBddEngine::new(net, model, leaves);
    let mut relation = Ref::TRUE;
    for (i, &z) in net.outputs().iter().enumerate() {
        let t = output_required[i];
        let chi1 = engine.chi(&mut bdd, net, z, true, t)?;
        let chi0 = engine.chi(&mut bdd, net, z, false, t)?;
        let gz = globals.of(z);
        let ngz = bdd.try_not(gz)?;
        let c1 = {
            let x = bdd.try_xor(chi1, gz)?;
            bdd.try_not(x)?
        };
        let c0 = {
            let x = bdd.try_xor(chi0, ngz)?;
            bdd.try_not(x)?
        };
        relation = bdd.try_and(relation, c1)?;
        relation = bdd.try_and(relation, c0)?;
    }
    let leaves = engine.leaves;
    let ord = leaves.ordering_constraint(&mut bdd)?;
    relation = bdd.try_and(relation, ord)?;

    let leaf_list = leaves.leaf_var_list();
    let mut latest = bdd.try_minimal_wrt(relation, &leaf_list)?;

    if options.reorder {
        let roots = bdd.try_reduce(&[relation, latest])?;
        relation = roots[0];
        latest = roots[1];
    }

    let topo_net_required = required_times(net, model, output_required);
    let topo_required = net
        .inputs()
        .iter()
        .map(|i| topo_net_required[i.index()])
        .collect();

    // Construction is done: disarm the governor so post-hoc accessors
    // (which use the panicking BDD operations) cannot trip over a
    // deadline that passes after the answer already exists.
    bdd.set_deadline(None);
    bdd.set_cancel_flag(None);
    bdd.set_mem_limit(None);

    Ok(ExactAnalysis {
        x_vars,
        leaf_vars: leaves.leaf_vars.clone(),
        relation,
        latest,
        topo_required,
        leaves,
        bdd,
    })
}

impl ExactAnalysis {
    /// Number of leaf variables.
    pub fn leaf_count(&self) -> usize {
        self.leaf_vars.len()
    }

    fn restrict_to_minterm(&mut self, f: Ref, x: &[bool]) -> Ref {
        assert_eq!(x.len(), self.x_vars.len());
        let cube: Vec<(Var, bool)> = self.x_vars.iter().copied().zip(x.iter().copied()).collect();
        self.bdd.restrict_cube(f, &cube)
    }

    /// All permissible leaf vectors for one input minterm, as bit
    /// vectors aligned with [`ExactAnalysis::leaf_vars`].
    ///
    /// Intended for small leaf counts (worked examples); cost is
    /// exponential in the number of leaves.
    ///
    /// # Panics
    ///
    /// Panics beyond 20 leaf variables — use the symbolic accessors
    /// ([`ExactAnalysis::relation`], [`ExactAnalysis::latest`]) instead.
    pub fn permissible_vectors(&mut self, x: &[bool]) -> Vec<Vec<bool>> {
        assert!(
            self.leaf_vars.len() <= 20,
            "explicit enumeration limited to 20 leaf variables ({} present)",
            self.leaf_vars.len()
        );
        let f = self.restrict_to_minterm(self.relation, x);
        let vars = self.leaves.leaf_var_list();
        self.bdd.minterms(f, &vars)
    }

    /// The latest (minimal) leaf vectors for one input minterm.
    ///
    /// # Panics
    ///
    /// Panics beyond 20 leaf variables (see
    /// [`ExactAnalysis::permissible_vectors`]).
    pub fn latest_vectors(&mut self, x: &[bool]) -> Vec<Vec<bool>> {
        assert!(
            self.leaf_vars.len() <= 20,
            "explicit enumeration limited to 20 leaf variables ({} present)",
            self.leaf_vars.len()
        );
        let f = self.restrict_to_minterm(self.latest, x);
        let vars = self.leaves.leaf_var_list();
        self.bdd.minterms(f, &vars)
    }

    /// The latest required-time tuples for one input minterm — the
    /// right-hand table of the paper's §4.1 example.
    pub fn latest_tuples(&mut self, x: &[bool]) -> Vec<RequiredTimeTuple> {
        let vars = self.leaves.leaf_var_list();
        let vecs = self.latest_vectors(x);
        let mut tuples: Vec<RequiredTimeTuple> = vecs
            .iter()
            .map(|bits| {
                self.leaves.interpret_leaf_assignment(|v| {
                    let idx = vars.iter().position(|&lv| lv == v).expect("known var");
                    bits[idx]
                })
            })
            .collect();
        tuples.dedup();
        tuples
    }

    /// Does the relation admit, for some input minterm, a latest
    /// condition strictly looser than topological analysis? (The `*`
    /// marker of the paper's Table 1.)
    ///
    /// Only the deadline of the value each input actually settles to
    /// under the minterm is compared (the other value's deadline is
    /// vacuous for that minterm). The check is fully symbolic: an
    /// input's active deadline exceeds `r⊥` exactly when every leaf bit
    /// at times `≤ r⊥` is 0, so one BDD intersection decides the
    /// question for all minterms at once.
    pub fn has_nontrivial_requirement(&mut self) -> bool {
        let mut interesting = Ref::FALSE;
        for pos in 0..self.x_vars.len() {
            let rbot = self.topo_required[pos];
            for value in [true, false] {
                let times: Vec<Time> = self.leaves.plan().per_input[pos].for_value(value).to_vec();
                let xlit = if value {
                    self.bdd.var(self.x_vars[pos])
                } else {
                    self.bdd.nvar(self.x_vars[pos])
                };
                let cond = match times.first() {
                    // Never referenced for this polarity: deadline ∞,
                    // looser than any finite topological requirement.
                    None => {
                        if rbot.is_inf() {
                            continue;
                        }
                        xlit
                    }
                    Some(&t1) if t1 > rbot => xlit,
                    Some(&t1) => {
                        // Deadline > r⊥ ⟺ the (unique) bit at t₁ = r⊥
                        // is 0.
                        let leaf = self
                            .leaf_vars
                            .iter()
                            .find(|(k, _)| k.input_pos == pos && k.value == value && k.time == t1)
                            .map(|&(_, v)| v)
                            .expect("planned leaf exists");
                        let nleaf = self.bdd.nvar(leaf);
                        self.bdd.and(xlit, nleaf)
                    }
                };
                interesting = self.bdd.or(interesting, cond);
            }
        }
        !self.bdd.and(self.latest, interesting).is_false()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    /// The paper's Figure 4 circuit.
    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    fn analysis() -> ExactAnalysis {
        exact_required_times(
            &fig4(),
            &UnitDelay,
            &[Time::new(2)],
            ExactOptions::default(),
        )
        .unwrap()
    }

    /// Leaf vector bits in the paper's column order:
    /// χ⁰_{x1,1} χ⁰_{x2,1} χ¹_{x2,1} χ⁰_{x1,0} χ⁰_{x2,0} χ¹_{x2,0}.
    fn paper_order(a: &ExactAnalysis) -> Vec<usize> {
        let want = [
            (0, true, 0),
            (1, true, 0),
            (1, true, 1),
            (0, false, 0),
            (1, false, 0),
            (1, false, 1),
        ];
        want.iter()
            .map(|&(pos, val, t)| {
                a.leaf_vars
                    .iter()
                    .position(|(k, _)| {
                        k.input_pos == pos && k.value == val && k.time == Time::new(t)
                    })
                    .expect("leaf present")
            })
            .collect()
    }

    fn reorder_bits(bits: &[bool], order: &[usize]) -> String {
        order
            .iter()
            .map(|&i| if bits[i] { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn fig4_full_relation_matches_paper_table() {
        let mut a = analysis();
        let order = paper_order(&a);
        let expect: [(usize, &[&str]); 4] = [
            (0b00, &["000100", "000101", "000001", "000011", "000111"]),
            (0b10, &["000100", "001100", "011100"]), // x1=0, x2=1
            (0b01, &["000001", "000011", "100001", "100011"]), // x1=1, x2=0
            (0b11, &["111000"]),
        ];
        for (minterm, rows) in expect {
            let x = [(minterm & 1) != 0, (minterm & 2) != 0];
            let mut got: Vec<String> = a
                .permissible_vectors(&x)
                .iter()
                .map(|bits| reorder_bits(bits, &order))
                .collect();
            got.sort();
            let mut want: Vec<String> = rows.iter().map(|s| s.to_string()).collect();
            want.sort();
            assert_eq!(got, want, "relation rows for x1x2={:b}", minterm);
        }
    }

    #[test]
    fn fig4_latest_subrelation_matches_paper() {
        let mut a = analysis();
        let order = paper_order(&a);
        let expect: [(usize, &[&str]); 4] = [
            (0b00, &["000100", "000001"]),
            (0b10, &["000100"]),
            (0b01, &["000001"]),
            (0b11, &["111000"]),
        ];
        for (minterm, rows) in expect {
            let x = [(minterm & 1) != 0, (minterm & 2) != 0];
            let mut got: Vec<String> = a
                .latest_vectors(&x)
                .iter()
                .map(|bits| reorder_bits(bits, &order))
                .collect();
            got.sort();
            let mut want: Vec<String> = rows.iter().map(|s| s.to_string()).collect();
            want.sort();
            assert_eq!(got, want, "latest rows for x1x2={:b}", minterm);
        }
    }

    #[test]
    fn fig4_required_time_tuples_match_paper() {
        let mut a = analysis();
        // Paper: 00 → {(0,∞),(∞,1)}, 01 → {(0,∞)}, 10 → {(∞,1)}, 11 → {(0,0)}.
        let tuples_at = |a: &mut ExactAnalysis, x1: bool, x2: bool| -> Vec<(Time, Time)> {
            let mut v: Vec<(Time, Time)> = a
                .latest_tuples(&[x1, x2])
                .iter()
                .map(|t| {
                    // Active-value deadline per input.
                    let r1 = if x1 {
                        t.per_input[0].value1
                    } else {
                        t.per_input[0].value0
                    };
                    let r2 = if x2 {
                        t.per_input[1].value1
                    } else {
                        t.per_input[1].value0
                    };
                    (r1, r2)
                })
                .collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(
            tuples_at(&mut a, false, false),
            vec![(Time::new(0), Time::INF), (Time::INF, Time::new(1))]
        );
        assert_eq!(
            tuples_at(&mut a, false, true),
            vec![(Time::new(0), Time::INF)]
        );
        assert_eq!(
            tuples_at(&mut a, true, false),
            vec![(Time::INF, Time::new(1))]
        );
        assert_eq!(
            tuples_at(&mut a, true, true),
            vec![(Time::new(0), Time::new(0))]
        );
    }

    #[test]
    fn fig4_is_nontrivial() {
        let mut a = analysis();
        assert!(a.has_nontrivial_requirement());
    }

    #[test]
    fn parity_is_trivial() {
        // XOR chain: every input always controls the output; no
        // flexibility beyond topological required times.
        let mut net = Network::new("parity");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let z = net.add_gate("z", GateKind::Xor, &[a, b]).unwrap();
        net.mark_output(z);
        let mut an =
            exact_required_times(&net, &UnitDelay, &[Time::new(1)], ExactOptions::default())
                .unwrap();
        assert!(!an.has_nontrivial_requirement());
    }

    #[test]
    fn memory_out_reported() {
        let net = fig4();
        let r = exact_required_times(
            &net,
            &UnitDelay,
            &[Time::new(2)],
            ExactOptions {
                node_limit: 12,
                reorder: false,
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn reorder_preserves_results() {
        let mut plain = analysis();
        let mut reordered = exact_required_times(
            &fig4(),
            &UnitDelay,
            &[Time::new(2)],
            ExactOptions {
                reorder: true,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        for m in 0..4usize {
            let x = [(m & 1) != 0, (m & 2) != 0];
            let mut a = plain.latest_tuples(&x);
            let mut b = reordered.latest_tuples(&x);
            let key = |t: &RequiredTimeTuple| format!("{t}");
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "minterm {m}");
        }
    }

    #[test]
    fn topological_point_always_permissible() {
        // The all-allowed-bits-on vector (χ_{x,v} = lit(x,v) at every
        // planned time) must satisfy the relation for every minterm
        // (Lemma 3 of the paper).
        let mut a = analysis();
        for m in 0..4usize {
            let x = [(m & 1) != 0, (m & 2) != 0];
            let vectors = a.permissible_vectors(&x);
            let topo: Vec<bool> = a
                .leaf_vars
                .iter()
                .map(|(k, _)| {
                    if k.value {
                        x[k.input_pos]
                    } else {
                        !x[k.input_pos]
                    }
                })
                .collect();
            assert!(
                vectors.contains(&topo),
                "topological vector missing for minterm {m}"
            );
        }
    }
}
