//! Approximate approach 2 (§4.3): lattice climbing with a functional
//! timing oracle.
//!
//! Candidate required times form the lattice `R = R₁ × … × R_n`; the
//! bottom `r⊥` is topological analysis. A candidate `r` is *safe* when a
//! full functional (false-path-aware) timing analysis under arrival
//! times `r` still meets every output's required time. Safety is
//! downward closed, so greedy coordinate raises find a maximal safe
//! point; backtracking enumerates all of them.
//!
//! ## Oracle architecture
//!
//! The safety oracle is decomposed per output cone: each primary output
//! gets its own standalone cone network ([`Network::extract_cone`]) with
//! its own delay table, so each stability check builds a private χ
//! engine over just that cone. This buys three things:
//!
//! - **Parallel validation** — cone checks are independent pure
//!   functions of `(cone, projected arrivals)`, so they fan out across
//!   [`std::thread::scope`] threads ([`Approx2Options::threads`]).
//!   Verdicts do not depend on evaluation order, so the search result is
//!   identical for every thread count (when no per-query conflict or
//!   propagation budget can truncate a verdict).
//! - **Incremental re-checks** — raising coordinate `i` only re-runs
//!   cones whose transitive input support contains `i` (precomputed
//!   [`Network::output_support_masks`]); every other cone inherits its
//!   verdict from the current safe point.
//! - **Dominance pruning** — safety is monotone decreasing in the
//!   pointwise order, so verdict caches can answer by dominance instead
//!   of exact key ([`CacheStrategy::Dominance`], the default), and the
//!   per-coordinate climb can gallop: probe the next rung, then the top
//!   rung, then binary-search the frontier in between instead of
//!   walking every rung.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xrta_bdd::{BddError, FxHashMap};
use xrta_chi::{EngineKind, FunctionalTiming};
use xrta_network::{Network, NodeId};
use xrta_timing::{required_times, DelayModel, TableDelay, Time};

use crate::dominance::{CacheStrategy, DominanceCache};
use crate::governor::{AnalysisError, Budget};
use crate::plan::plan_leaves;

/// Options for the lattice-climbing analysis.
#[derive(Clone, Copy, Debug)]
pub struct Approx2Options {
    /// Which χ engine validates candidates (the paper uses the SAT
    /// engine for scalability).
    pub engine: EngineKind,
    /// Also try `∞` ("never arrives") as the top candidate per input.
    pub allow_never: bool,
    /// Stop after this many maximal points.
    pub max_solutions: usize,
    /// Stop after this many oracle invocations.
    pub max_oracle_calls: usize,
    /// Wall-clock budget (the paper's 12-hour cap, scaled down).
    pub time_budget: Option<Duration>,
    /// SAT-conflict budget per oracle query; inconclusive queries count
    /// as unsafe (sound: a candidate is only accepted when provably
    /// safe). `None` = unlimited.
    pub oracle_conflict_budget: Option<u64>,
    /// Unit-propagation budget per oracle query — a hard wall-clock
    /// bound on multiplier-class χ networks. Same conservative
    /// treatment as the conflict budget. `None` = unlimited.
    pub oracle_propagation_budget: Option<u64>,
    /// Candidate clustering stride (the paper's conclusion: "group
    /// [required times] into clusters of neighboring required times
    /// conservatively; controlling the number of clusters gives a
    /// trade-off between accuracy and CPU time"). A stride of `k` keeps
    /// every `k`-th candidate per input (always keeping the bottom and,
    /// when enabled, the ∞ top). 1 = no clustering.
    pub cluster_stride: usize,
    /// Worker threads for cone validation (and, with
    /// [`CacheStrategy::Dominance`], speculative ladder probes).
    /// `0` = use [`std::thread::available_parallelism`]; `1` = fully
    /// sequential. Any value produces the same maximal points.
    pub threads: usize,
    /// Verdict-cache strategy; see [`CacheStrategy`].
    pub cache: CacheStrategy,
}

impl Default for Approx2Options {
    fn default() -> Self {
        Approx2Options {
            engine: EngineKind::Sat,
            allow_never: true,
            max_solutions: 8,
            max_oracle_calls: 10_000,
            time_budget: None,
            oracle_conflict_budget: None,
            oracle_propagation_budget: None,
            cluster_stride: 1,
            threads: 0,
            cache: CacheStrategy::Dominance,
        }
    }
}

impl Approx2Options {
    /// Resolves [`Approx2Options::threads`] (`0` → available
    /// parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Result of the lattice-climbing analysis.
#[derive(Clone, Debug)]
pub struct Approx2Result {
    /// The topological bottom `r⊥` (per input, aligned with
    /// `net.inputs()`).
    pub r_bottom: Vec<Time>,
    /// Maximal safe points found (each dominates `r_bottom`).
    pub maximal: Vec<Vec<Time>>,
    /// The candidate rungs per input the climb searched over (aligned
    /// with `net.inputs()`; each starts at the bottom, increasing).
    pub candidates: Vec<Vec<Time>>,
    /// Wall time until the first validated `r ≠ r⊥`, if any (the
    /// "CPU time first r ≠ r⊥" column of the paper's Table 2).
    pub first_nontrivial: Option<Duration>,
    /// Total wall time of the search ("CPU time r_max").
    pub total_time: Duration,
    /// Oracle invocations (χ-engine runs; cache hits excluded).
    pub oracle_calls: usize,
    /// Safety queries answered from the verdict caches (whole-vector
    /// and per-cone combined) without running a χ engine.
    pub cache_hits: usize,
    /// Worker threads the search actually used.
    pub threads_used: usize,
    /// False when a budget cap stopped the enumeration early; the
    /// `maximal` found so far are still valid safe points.
    pub completed: bool,
    /// The governor cause that truncated the search, when a
    /// [`Budget`] deadline (rather than the options' own caps)
    /// stopped it. The partial `maximal` remain sound.
    pub stopped_by: Option<AnalysisError>,
    /// Cone validations that panicked; each read conservatively as
    /// "unsafe", so one poisoned cone cannot take down the session.
    pub worker_panics: usize,
}

impl Approx2Result {
    /// Did the analysis find any required time looser than topological?
    pub fn has_nontrivial_requirement(&self) -> bool {
        self.maximal.iter().any(|r| r != &self.r_bottom)
    }

    /// Fraction of safety queries answered without a χ-engine run.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.oracle_calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The maximal points as [`RequiredTimeTuple`]s (uniform deadlines,
    /// since this analysis is value-independent) — the same type the
    /// exact and parametric analyses report, for uniform consumption.
    pub fn maximal_conditions(&self) -> Vec<crate::types::RequiredTimeTuple> {
        self.maximal
            .iter()
            .map(|r| crate::types::RequiredTimeTuple::uniform(r))
            .collect()
    }
}

/// One output's standalone validation cone: a private network, delay
/// table and support mask, so the cone's χ engine can run on any thread
/// without touching shared state.
struct Cone {
    /// The cone as its own network (inputs = the original PIs feeding
    /// it).
    net: Network,
    /// The root output inside `net`.
    out: NodeId,
    /// Delays copied from the caller's model (cone node ids).
    delays: TableDelay,
    /// Original input positions, in `net.inputs()` order.
    input_pos: Vec<usize>,
    /// Support bitmask over original input positions.
    mask: Vec<u64>,
    /// Required time at this output.
    required: Time,
}

impl Cone {
    fn supports(&self, input_pos: usize) -> bool {
        (self.mask[input_pos / 64] >> (input_pos % 64)) & 1 == 1
    }
}

/// One pending oracle query: validate cone `cone` under the projected
/// arrivals `proj`.
struct ConeQuery {
    cone: usize,
    proj: Vec<Time>,
}

/// Governor state shared with every cone validation.
#[derive(Clone, Default)]
struct OracleGovernor {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    node_limit: Option<usize>,
}

/// Outcome of one cone validation.
#[derive(Clone, Copy)]
struct ConeVerdict {
    /// Provably safe? Conservative `false` on any inconclusive run.
    safe: bool,
    /// Governor interrupt that must stop the whole search, if any.
    stop: Option<AnalysisError>,
    /// Did the validation panic (poisoned cone)?
    panicked: bool,
}

struct Search<'n> {
    candidates: Vec<Vec<Time>>,
    options: Approx2Options,
    cones: &'n [Cone],
    r_bottom: Vec<Time>,
    /// Exact-key caches ([`CacheStrategy::Exact`]).
    exact_full: FxHashMap<Vec<Time>, bool>,
    exact_out: FxHashMap<(usize, Vec<Time>), bool>,
    /// Dominance caches ([`CacheStrategy::Dominance`]): whole-vector
    /// plus one per cone over its projections.
    dom_full: DominanceCache,
    dom_out: Vec<DominanceCache>,
    oracle_calls: usize,
    cache_hits: usize,
    started: Instant,
    first_nontrivial: Option<Duration>,
    out_of_budget: bool,
    gov: OracleGovernor,
    interrupted: Option<AnalysisError>,
    worker_panics: usize,
}

impl<'n> Search<'n> {
    fn time_exhausted(&self) -> bool {
        self.options
            .time_budget
            .is_some_and(|b| self.started.elapsed() >= b)
    }

    /// Budget interrupt pending? Polled between validation batches.
    fn governor_stop(&self) -> Option<AnalysisError> {
        if let Some(flag) = &self.gov.cancel {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Some(AnalysisError::Interrupted);
            }
        }
        if let Some(d) = self.gov.deadline {
            if Instant::now() >= d {
                return Some(AnalysisError::DeadlineExceeded);
            }
        }
        None
    }

    fn project(&self, cone: usize, r: &[Time]) -> Vec<Time> {
        self.cones[cone].input_pos.iter().map(|&p| r[p]).collect()
    }

    fn query_full(&mut self, r: &[Time]) -> Option<bool> {
        match self.options.cache {
            CacheStrategy::Exact => self.exact_full.get(r).copied(),
            CacheStrategy::Dominance => self.dom_full.query(r),
        }
    }

    fn record_full(&mut self, r: &[Time], safe: bool) {
        match self.options.cache {
            CacheStrategy::Exact => {
                self.exact_full.insert(r.to_vec(), safe);
            }
            CacheStrategy::Dominance => self.dom_full.insert(r, safe),
        }
        if safe && self.first_nontrivial.is_none() && r != self.r_bottom.as_slice() {
            self.first_nontrivial = Some(self.started.elapsed());
        }
    }

    fn query_out(&mut self, cone: usize, proj: &[Time]) -> Option<bool> {
        match self.options.cache {
            CacheStrategy::Exact => self.exact_out.get(&(cone, proj.to_vec())).copied(),
            CacheStrategy::Dominance => self.dom_out[cone].query(proj),
        }
    }

    fn record_out(&mut self, cone: usize, proj: &[Time], safe: bool) {
        match self.options.cache {
            CacheStrategy::Exact => {
                self.exact_out.insert((cone, proj.to_vec()), safe);
            }
            CacheStrategy::Dominance => self.dom_out[cone].insert(proj, safe),
        }
    }

    /// Runs one χ engine on one cone. Pure: the verdict depends only on
    /// the query (plus the per-query budgets), never on search state.
    /// Panics are caught (one poisoned cone must not take down the
    /// session) and read conservatively as "unsafe".
    fn eval_one(
        cones: &[Cone],
        options: &Approx2Options,
        gov: &OracleGovernor,
        q: &ConeQuery,
    ) -> ConeVerdict {
        let cone = &cones[q.cone];
        let run = catch_unwind(AssertUnwindSafe(|| {
            // Fault-injection site at the top of a cone worker: a
            // `panic` schedule exercises the catch_unwind below the
            // same way a real poisoned cone would; `err`/`exhaust`
            // forge the corresponding oracle failures.
            match xrta_robust::failpoint::eval("approx2::cone") {
                Some(xrta_robust::failpoint::Outcome::Exhausted) => {
                    return Err(BddError::Capacity {
                        limit: gov.node_limit.unwrap_or(usize::MAX),
                    })
                }
                Some(xrta_robust::failpoint::Outcome::ReturnError) => {
                    return Err(BddError::Deadline)
                }
                None => {}
            }
            let ft = FunctionalTiming::new(&cone.net, &cone.delays, q.proj.clone(), options.engine)
                .with_conflict_budget(options.oracle_conflict_budget)
                .with_propagation_budget(options.oracle_propagation_budget)
                .with_node_limit(gov.node_limit)
                .with_deadline(gov.deadline)
                .with_cancel_flag(gov.cancel.clone());
            ft.try_stable_by(cone.out, cone.required)
        }));
        match run {
            Ok(Ok(safe)) => ConeVerdict {
                safe,
                stop: None,
                panicked: false,
            },
            // Node budget: this cone alone is too big for the BDD
            // oracle — conservatively unsafe, but keep searching (other
            // cones may still answer).
            Ok(Err(BddError::Capacity { .. })) => ConeVerdict {
                safe: false,
                stop: None,
                panicked: false,
            },
            Ok(Err(e)) => ConeVerdict {
                safe: false,
                stop: Some(e.into()),
                panicked: false,
            },
            Err(_) => ConeVerdict {
                safe: false,
                stop: None,
                panicked: true,
            },
        }
    }

    /// Evaluates a batch of cone queries, fanning across worker threads
    /// when more than one query is pending. Returns `None` (after
    /// evaluating and caching what the budget still allowed) when an
    /// oracle-call, wall-clock or governor budget cuts the batch short.
    fn evaluate_queries(&mut self, queries: &[ConeQuery]) -> Option<Vec<bool>> {
        if queries.is_empty() {
            return Some(Vec::new());
        }
        if let Some(e) = self.governor_stop() {
            self.interrupted.get_or_insert(e);
            self.out_of_budget = true;
            return None;
        }
        if self.time_exhausted() {
            self.out_of_budget = true;
            return None;
        }
        let remaining = self
            .options
            .max_oracle_calls
            .saturating_sub(self.oracle_calls);
        let truncated = queries.len() > remaining;
        let run = if truncated {
            &queries[..remaining]
        } else {
            queries
        };
        self.oracle_calls += run.len();
        let threads = self.options.effective_threads().min(run.len());
        let verdicts: Vec<ConeVerdict> = if threads <= 1 {
            run.iter()
                .map(|q| Self::eval_one(self.cones, &self.options, &self.gov, q))
                .collect()
        } else {
            let cones = self.cones;
            let options = &self.options;
            let gov = &self.gov;
            std::thread::scope(|s| {
                // Round-robin assignment keeps chunks balanced without
                // reordering; verdicts land by index.
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let work: Vec<(usize, &ConeQuery)> = run
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| k % threads == w)
                            .collect();
                        s.spawn(move || {
                            work.into_iter()
                                .map(|(k, q)| (k, Self::eval_one(cones, options, gov, q)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Slots left untouched by a worker that died outside
                // eval_one's catch_unwind stay at the conservative
                // panicked/unsafe default.
                let mut out = vec![
                    ConeVerdict {
                        safe: false,
                        stop: None,
                        panicked: true,
                    };
                    run.len()
                ];
                for h in handles {
                    if let Ok(items) = h.join() {
                        for (k, v) in items {
                            out[k] = v;
                        }
                    }
                }
                out
            })
        };
        for (q, v) in run.iter().zip(&verdicts) {
            if v.panicked {
                self.worker_panics += 1;
            }
            if let Some(e) = v.stop {
                // A deadline/cancel interrupt inside an engine: its
                // verdict is an artifact of the interrupt, not a fact
                // about the cone — do not cache it.
                self.interrupted.get_or_insert(e);
                self.out_of_budget = true;
            } else {
                self.record_out(q.cone, &q.proj, v.safe);
            }
        }
        if self.interrupted.is_some() {
            return None;
        }
        if truncated {
            self.out_of_budget = true;
            return None;
        }
        Some(verdicts.into_iter().map(|v| v.safe).collect())
    }

    /// Safety verdicts for raising coordinate `i` of the **safe** point
    /// `base` to each value in `rungs`. Only cones whose support
    /// contains `i` are re-validated; every other cone inherits its
    /// verdict from `base` (the incremental re-check). Returns `None`
    /// when a budget stops evaluation.
    fn probe_rungs(&mut self, base: &[Time], i: usize, rungs: &[Time]) -> Option<Vec<bool>> {
        let relevant: Vec<usize> = (0..self.cones.len())
            .filter(|&c| self.cones[c].supports(i))
            .collect();
        // Per rung: Some(verdict) once known, else the cones still
        // needing an oracle run.
        let mut verdicts: Vec<Option<bool>> = Vec::with_capacity(rungs.len());
        let mut pending: Vec<(usize, ConeQuery)> = Vec::new();
        for (k, &rung) in rungs.iter().enumerate() {
            let mut v = base.to_vec();
            v[i] = rung;
            if let Some(known) = self.query_full(&v) {
                self.cache_hits += 1;
                verdicts.push(Some(known));
                continue;
            }
            let mut unresolved = Vec::new();
            let mut known_unsafe = false;
            for &c in &relevant {
                let proj = self.project(c, &v);
                match self.query_out(c, &proj) {
                    Some(true) => self.cache_hits += 1,
                    Some(false) => {
                        self.cache_hits += 1;
                        known_unsafe = true;
                        break;
                    }
                    None => unresolved.push((c, proj)),
                }
            }
            if known_unsafe {
                verdicts.push(Some(false));
                self.record_full(&v, false);
            } else if unresolved.is_empty() {
                verdicts.push(Some(true));
                self.record_full(&v, true);
            } else {
                verdicts.push(None);
                pending.extend(
                    unresolved
                        .into_iter()
                        .map(|(cone, proj)| (k, ConeQuery { cone, proj })),
                );
            }
        }
        if !pending.is_empty() {
            let parallel = self.options.effective_threads() > 1 && pending.len() > 1;
            let mut failed: Vec<bool> = vec![false; rungs.len()];
            if parallel {
                // Speculative: evaluate everything at once.
                let queries: Vec<ConeQuery> = pending
                    .iter()
                    .map(|(_, q)| ConeQuery {
                        cone: q.cone,
                        proj: q.proj.clone(),
                    })
                    .collect();
                let res = self.evaluate_queries(&queries)?;
                for ((k, _), v) in pending.iter().zip(res) {
                    if !v {
                        failed[*k] = true;
                    }
                }
            } else {
                // Sequential: evaluate in rung order, skipping the rest
                // of a rung's cones after its first unsafe verdict.
                for (k, q) in &pending {
                    if failed[*k] {
                        continue;
                    }
                    let res = self.evaluate_queries(std::slice::from_ref(q))?;
                    if !res[0] {
                        failed[*k] = true;
                    }
                }
            }
            for (k, verdict) in verdicts.iter_mut().enumerate() {
                if verdict.is_none() {
                    let safe = !failed[k];
                    let mut v = base.to_vec();
                    v[i] = rungs[k];
                    self.record_full(&v, safe);
                    *verdict = Some(safe);
                }
            }
        }
        Some(verdicts.into_iter().map(|v| v.expect("resolved")).collect())
    }

    /// Raises coordinate `i` of the safe point `r` as far as it goes.
    /// Returns whether it moved.
    fn ascend(&mut self, r: &mut [Time], i: usize) -> bool {
        let cands = self.candidates[i].clone();
        let pos = cands.iter().position(|&c| c == r[i]).expect("on lattice");
        if pos + 1 >= cands.len() {
            return false;
        }
        match self.options.cache {
            CacheStrategy::Exact => self.ascend_linear(r, i, &cands, pos),
            CacheStrategy::Dominance => self.ascend_ladder(r, i, &cands, pos),
        }
    }

    /// Rung-by-rung ascent (the original exact-key behaviour).
    fn ascend_linear(&mut self, r: &mut [Time], i: usize, cands: &[Time], pos: usize) -> bool {
        let mut cur = pos;
        while cur + 1 < cands.len() {
            match self.probe_rungs(r, i, &cands[cur + 1..cur + 2]) {
                Some(v) if v[0] => {
                    cur += 1;
                    r[i] = cands[cur];
                }
                _ => break,
            }
        }
        cur > pos
    }

    /// Galloping ascent exploiting monotonicity: next rung, then top
    /// rung, then a binary search of the frontier in between. With
    /// multiple worker threads each bisection round probes several
    /// evenly spaced rungs speculatively; verdicts are pure, so the
    /// frontier found is the same as sequential bisection.
    fn ascend_ladder(&mut self, r: &mut [Time], i: usize, cands: &[Time], pos: usize) -> bool {
        // Step 1: the immediate next rung (cheap "cannot move" exit —
        // the common case on tight coordinates).
        match self.probe_rungs(r, i, &cands[pos + 1..pos + 2]) {
            Some(v) if v[0] => r[i] = cands[pos + 1],
            _ => return false,
        }
        let mut lo = pos + 1; // highest rung verified safe
        let top = cands.len() - 1;
        if lo == top {
            return true;
        }
        // Step 2: the top rung (∞ when allow_never) — one probe jumps
        // the whole ladder when the coordinate is unconstrained.
        match self.probe_rungs(r, i, &cands[top..top + 1]) {
            Some(v) if v[0] => {
                r[i] = cands[top];
                return true;
            }
            Some(_) => {}
            None => {
                r[i] = cands[lo];
                return true;
            }
        }
        let mut hi = top; // lowest rung verified unsafe
                          // Step 3: bisect (lo, hi); with t threads probe up to t rungs
                          // per round.
        while hi - lo > 1 {
            let k = self.options.effective_threads().min(hi - lo - 1).max(1);
            let mut picks: Vec<usize> = (1..=k)
                .map(|j| (lo + j * (hi - lo) / (k + 1)).clamp(lo + 1, hi - 1))
                .collect();
            picks.dedup();
            let rungs: Vec<Time> = picks.iter().map(|&ix| cands[ix]).collect();
            let Some(verdicts) = self.probe_rungs(r, i, &rungs) else {
                break;
            };
            for (&ix, &safe) in picks.iter().zip(&verdicts) {
                if safe {
                    lo = lo.max(ix);
                } else {
                    hi = hi.min(ix);
                }
            }
            if lo >= hi {
                // Only possible when per-query budgets made verdicts
                // non-monotone; `lo` itself was verified safe, stop here.
                break;
            }
        }
        r[i] = cands[lo];
        true
    }

    /// Greedy ascent from `r` to one maximal safe point.
    fn climb(&mut self, r: Vec<Time>) -> Vec<Time> {
        self.climb_rotated(r, 0)
    }

    /// Bounded enumeration of maximal safe points (§4.3's backtracking
    /// refinement, capped): up to `max_solutions` greedy climbs, each
    /// visiting the coordinates in a different rotation so incomparable
    /// maxima are found when the raise order matters. Exhaustive DFS over
    /// the lattice is avoided — on wide circuits the number of
    /// intermediate safe points is combinatorial.
    fn enumerate(&mut self, bottom: Vec<Time>) -> Vec<Vec<Time>> {
        let n = bottom.len().max(1);
        let mut maximal: Vec<Vec<Time>> = Vec::new();
        for attempt in 0..self.options.max_solutions {
            if self.out_of_budget {
                break;
            }
            let start = (attempt * n) / self.options.max_solutions.max(1);
            let m = self.climb_rotated(bottom.clone(), start);
            if !maximal.contains(&m) {
                maximal.push(m);
            }
        }
        maximal
    }

    /// Greedy ascent visiting coordinates starting from index `start`.
    fn climb_rotated(&mut self, mut r: Vec<Time>, start: usize) -> Vec<Time> {
        let n = r.len();
        loop {
            let mut progressed = false;
            for k in 0..n {
                let i = (start + k) % n;
                if self.ascend(&mut r, i) {
                    progressed = true;
                }
                if self.out_of_budget {
                    return r;
                }
            }
            if !progressed {
                return r;
            }
        }
    }
}

/// Runs the lattice-climbing analysis of §4.3.
///
/// The candidate set per input is the merged leaf-time list of the
/// planning pass (the times at which χ leaves are referenced), whose
/// minimum is the topological required time; `∞` is appended when
/// [`Approx2Options::allow_never`] is set. See the module docs for the
/// oracle architecture (per-cone engines, worker threads, dominance
/// cache).
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx2_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: Approx2Options,
) -> Approx2Result {
    approx2_required_times_governed(net, model, output_required, options, &Budget::unlimited())
        .expect("ungoverned analysis cannot be interrupted")
}

/// Budget-governed form of [`approx2_required_times`]. The budget's
/// deadline and cancel flag are polled between validation batches *and*
/// inside the per-cone engines; its SAT conflict budget tightens
/// [`Approx2Options::oracle_conflict_budget`] and its node limit bounds
/// the BDD oracle. A deadline yields `Ok` with the sound partial result
/// (provenance in [`Approx2Result::stopped_by`]); cancellation yields
/// [`AnalysisError::Interrupted`].
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx2_required_times_governed<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    mut options: Approx2Options,
    budget: &Budget,
) -> Result<Approx2Result, AnalysisError> {
    assert_eq!(output_required.len(), net.outputs().len());
    if budget.is_cancelled() {
        return Err(AnalysisError::Interrupted);
    }
    options.oracle_conflict_budget = match (options.oracle_conflict_budget, budget.sat_conflicts())
    {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let started = Instant::now();
    let plan = plan_leaves(net, model, output_required, |_| true);
    let topo_net = required_times(net, model, output_required);
    let r_bottom: Vec<Time> = net.inputs().iter().map(|i| topo_net[i.index()]).collect();
    let candidates: Vec<Vec<Time>> = plan
        .per_input
        .iter()
        .zip(&r_bottom)
        .map(|(lt, &bot)| {
            let mut c = lt.merged();
            if c.is_empty() || c[0] != bot {
                // Inputs outside every cone have no planned times; their
                // bottom is ∞ already.
                c.insert(0, bot);
                c.dedup();
            }
            if options.cluster_stride > 1 && c.len() > 2 {
                // Conservative coarsening: keep the bottom plus every
                // stride-th candidate (dropping a candidate only removes
                // an intermediate rung — the search stays sound, merely
                // less precise).
                let stride = options.cluster_stride;
                let kept: Vec<Time> = c
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % stride == 0 || *i + 1 == c.len())
                    .map(|(_, &t)| t)
                    .collect();
                c = kept;
            }
            if options.allow_never && *c.last().expect("non-empty") != Time::INF {
                c.push(Time::INF);
            }
            c
        })
        .collect();

    // Input positions in each output's transitive fanin cone.
    let input_pos_of: FxHashMap<usize, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(pos, id)| (id.index(), pos))
        .collect();
    let masks = net.output_support_masks();
    // One standalone validation cone per finite-required output
    // (∞-required outputs constrain nothing).
    let cones: Vec<Cone> = net
        .outputs()
        .iter()
        .enumerate()
        .filter(|&(oi, _)| !output_required[oi].is_inf())
        .map(|(oi, &o)| {
            let (cnet, map) = net.extract_cone(&[o]);
            let rev: FxHashMap<usize, usize> = map
                .iter()
                .map(|(old, new)| (new.index(), old.index()))
                .collect();
            let input_pos: Vec<usize> = cnet
                .inputs()
                .iter()
                .map(|nid| input_pos_of[&rev[&nid.index()]])
                .collect();
            let mut delays = TableDelay::with_default(&cnet, 0);
            for (old, new) in &map {
                delays.set(*new, model.delay(net, *old));
            }
            Cone {
                out: map[&o],
                net: cnet,
                delays,
                input_pos,
                mask: masks[oi].clone(),
                required: output_required[oi],
            }
        })
        .collect();

    let n_cones = cones.len();
    let mut search = Search {
        candidates,
        options,
        cones: &cones,
        r_bottom: r_bottom.clone(),
        exact_full: FxHashMap::default(),
        exact_out: FxHashMap::default(),
        dom_full: DominanceCache::new(),
        dom_out: (0..n_cones).map(|_| DominanceCache::new()).collect(),
        oracle_calls: 0,
        cache_hits: 0,
        started,
        first_nontrivial: None,
        out_of_budget: false,
        gov: OracleGovernor {
            deadline: budget.deadline(),
            cancel: Some(budget.cancel_flag()),
            node_limit: budget.node_limit(),
        },
        interrupted: None,
        worker_panics: 0,
    };

    // The bottom is safe by construction (topological analysis is
    // conservative); seed the caches so a conflict budget cannot make
    // the search reject its own starting point.
    search.record_full(&r_bottom, true);
    for c in 0..n_cones {
        let proj = search.project(c, &r_bottom);
        search.record_out(c, &proj, true);
    }

    let maximal = if options.max_solutions <= 1 {
        vec![search.climb(r_bottom.clone())]
    } else {
        let mut m = search.enumerate(r_bottom.clone());
        if m.is_empty() {
            m.push(search.climb(r_bottom.clone()));
        }
        m
    };

    if search.interrupted == Some(AnalysisError::Interrupted) {
        // Cancellation means "stop, the caller no longer wants an
        // answer" — unlike a deadline, there is no one left to use a
        // partial result.
        return Err(AnalysisError::Interrupted);
    }

    Ok(Approx2Result {
        r_bottom,
        maximal,
        candidates: search.candidates,
        first_nontrivial: search.first_nontrivial,
        total_time: started.elapsed(),
        oracle_calls: search.oracle_calls,
        cache_hits: search.cache_hits,
        threads_used: options.effective_threads(),
        completed: !search.out_of_budget,
        stopped_by: search.interrupted,
        worker_panics: search.worker_panics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    /// The canonical two-MUX bypass false path (see `xrta-chi`): the
    /// slow input x can arrive later than topological analysis says.
    fn mux_false_path() -> Network {
        let mut net = Network::new("fp");
        let s = net.add_input("s").unwrap();
        let x = net.add_input("x").unwrap();
        let c = net.add_input("c").unwrap();
        let b1 = net.add_gate("b1", GateKind::Buf, &[x]).unwrap();
        let b2 = net.add_gate("b2", GateKind::Buf, &[b1]).unwrap();
        let m1 = net.add_gate("m1", GateKind::Mux, &[s, x, b2]).unwrap();
        let z = net.add_gate("z", GateKind::Mux, &[s, m1, c]).unwrap();
        net.mark_output(z);
        net
    }

    #[test]
    fn fig4_value_independent_search_is_trivial() {
        // The §4.3 implementation searches value-independent times; for
        // Figure 4 the looseness is value-dependent only, so the climb
        // stays at r⊥ — matching the paper's observation that approx 1
        // can beat approx 2 on such circuits.
        let net = fig4();
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(2)], Approx2Options::default());
        assert_eq!(r.r_bottom, vec![Time::new(0), Time::new(0)]);
        assert!(!r.has_nontrivial_requirement());
        assert!(r.completed);
    }

    #[test]
    fn false_path_circuit_gives_loose_times() {
        let net = mux_false_path();
        let topo_req = Time::new(4);
        let r = approx2_required_times(&net, &UnitDelay, &[topo_req], Approx2Options::default());
        // Topological: x must arrive by 4 − 4 = 0. The false path lets
        // it arrive later in every maximal condition.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        assert!(r.has_nontrivial_requirement());
        // Several incomparable maximal points may exist (e.g. raising s
        // instead of x); at least one must loosen x.
        assert!(
            r.maximal.iter().any(|m| m[x_pos] > Time::new(0)),
            "x loosened in some maximal point: {:?}",
            r.maximal
        );
        assert!(r.first_nontrivial.is_some());
    }

    #[test]
    fn maximal_points_are_safe_and_unraisable() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let opts = Approx2Options::default();
        let r = approx2_required_times(&net, &UnitDelay, &req, opts);
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req), "maximal point {m:?} must be safe");
            // Unraisable: the next candidate rung of every coordinate is
            // unsafe.
            for (i, cands) in r.candidates.iter().enumerate() {
                let pos = cands.iter().position(|&c| c == m[i]).expect("on lattice");
                if pos + 1 < cands.len() {
                    let mut up = m.clone();
                    up[i] = cands[pos + 1];
                    let ft = FunctionalTiming::new(&net, &UnitDelay, up, EngineKind::Bdd);
                    assert!(!ft.meets(&req), "raise of coord {i} from {m:?} still safe");
                }
            }
        }
    }

    #[test]
    fn engines_agree() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let sat = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Sat,
                ..Approx2Options::default()
            },
        );
        let bdd = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Bdd,
                ..Approx2Options::default()
            },
        );
        let norm = |mut v: Vec<Vec<Time>>| {
            v.sort();
            v
        };
        assert_eq!(norm(sat.maximal), norm(bdd.maximal));
    }

    #[test]
    fn cache_strategies_find_identical_maximal_sets() {
        for threads in [1usize, 3] {
            let net = mux_false_path();
            let req = [Time::new(4)];
            let exact = approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    cache: CacheStrategy::Exact,
                    threads,
                    ..Approx2Options::default()
                },
            );
            let dom = approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    cache: CacheStrategy::Dominance,
                    threads,
                    ..Approx2Options::default()
                },
            );
            assert_eq!(exact.maximal, dom.maximal, "threads = {threads}");
            // The dominance cache must not need more oracle runs than the
            // exact-key baseline.
            assert!(
                dom.oracle_calls <= exact.oracle_calls,
                "dominance {} vs exact {} oracle calls",
                dom.oracle_calls,
                exact.oracle_calls
            );
        }
    }

    #[test]
    fn thread_counts_agree() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let run = |threads| {
            approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    threads,
                    ..Approx2Options::default()
                },
            )
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.maximal, par.maximal);
        assert_eq!(seq.r_bottom, par.r_bottom);
        assert_eq!(par.threads_used, 4);
    }

    #[test]
    fn oracle_budget_respected() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_oracle_calls: 2,
                ..Approx2Options::default()
            },
        );
        assert!(r.oracle_calls <= 2);
        assert!(!r.completed);
    }

    #[test]
    fn single_solution_mode_climbs_greedily() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_solutions: 1,
                ..Approx2Options::default()
            },
        );
        assert_eq!(r.maximal.len(), 1);
        let m = &r.maximal[0];
        // Greedy result must dominate the bottom.
        assert!(m.iter().zip(&r.r_bottom).all(|(a, b)| a >= b));
    }

    #[test]
    fn clustering_is_sound_but_coarser() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let full = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
        let clustered = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                cluster_stride: 2,
                ..Approx2Options::default()
            },
        );
        // Clustered results are still safe…
        for m in &clustered.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req));
        }
        // …and never use more oracle calls than the full lattice needs
        // more rungs for.
        assert!(clustered.oracle_calls <= full.oracle_calls + 2);
    }

    #[test]
    fn table_delay_model_respected() {
        use xrta_timing::TableDelay;
        // Make the bypass buffers free: the "slow" branch stops being
        // slow and the topological bottom shifts accordingly.
        let net = mux_false_path();
        let mut model = TableDelay::with_default(&net, 1);
        for name in ["b1", "b2"] {
            model.set(net.find(name).unwrap(), 0);
        }
        let r = approx2_required_times(&net, &model, &[Time::new(2)], Approx2Options::default());
        // x's topological requirement: through m1 (delay 1) + z (1) with
        // free buffers → req(x) = 0.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &model, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&[Time::new(2)]));
        }
    }

    #[test]
    fn never_candidate_found_for_unobserved_input() {
        // An input that no output depends on can arrive at ∞.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let bb = net.add_gate("bb", GateKind::Buf, &[b]).unwrap();
        let z = net.add_gate("z", GateKind::Buf, &[a]).unwrap();
        net.mark_output(z);
        let _ = bb;
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(1)], Approx2Options::default());
        let b_pos = 1;
        assert!(r.maximal.iter().all(|m| m[b_pos].is_inf()));
    }

    #[test]
    fn dominance_reports_cache_hits() {
        let net = mux_false_path();
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(4)], Approx2Options::default());
        // Rotated restarts re-traverse the region below the first
        // maximal point — the dominance cache must absorb some of it.
        assert!(r.cache_hits > 0);
        assert!(r.cache_hit_rate() > 0.0 && r.cache_hit_rate() < 1.0);
    }
}
