//! Approximate approach 2 (§4.3): lattice climbing with a functional
//! timing oracle.
//!
//! Candidate required times form the lattice `R = R₁ × … × R_n`; the
//! bottom `r⊥` is topological analysis. A candidate `r` is *safe* when a
//! full functional (false-path-aware) timing analysis under arrival
//! times `r` still meets every output's required time. Safety is
//! downward closed, so greedy coordinate raises find a maximal safe
//! point; backtracking enumerates all of them.
//!
//! ## Oracle architecture
//!
//! The safety oracle is decomposed per output cone: each primary output
//! gets its own standalone cone network ([`Network::extract_cone`]) with
//! its own delay table, so each stability check runs a private χ engine
//! over just that cone. Validation is organised as **rounds** over a
//! work-stealing pool:
//!
//! - **Batched probes** — every pending `(cone, rung)` probe of a round
//!   is grouped by cone into one [`Batch`]. A batch's SAT probes share
//!   one selector-guarded χ engine ([`ChiSatEngine::new_varying`]):
//!   the CNF is built once with the raised coordinate varying over the
//!   batch's rung values, so learned clauses and the clause database
//!   carry across the rungs of a batch instead of being rebuilt per
//!   probe.
//! - **Work stealing** — batches are seeded round-robin into per-worker
//!   deques ([`StealQueues`]); an idle worker steals the oldest batch
//!   of a loaded sibling instead of waiting at a static split, and the
//!   coordinator participates in every round. Helper threads spawn
//!   lazily: a search that never accumulates enough oracle work
//!   ([`WARMUP_ORACLE_CALLS`]) runs entirely on the calling thread and
//!   pays zero spawn latency.
//! - **Shared striped cache** — cone verdicts are pure facts about
//!   `(cone, projected arrivals)`, stored in a lock-striped cache
//!   ([`StripedVerdictCache`]) keyed by support-mask fingerprint. A
//!   verdict proven by one worker immediately prunes every other
//!   worker's pending probes, which keeps the parallel oracle-call
//!   count at the sequential level instead of multiplying it.
//! - **Speculative climb pipelining** — the greedy climb is inherently
//!   sequential (each raise depends on the last verdict), so round
//!   batches alone cannot keep helpers busy. While the coordinator
//!   walks one coordinate, workers pre-solve the *step-1 probes of the
//!   next few coordinates* ([`SPEC_WINDOW`]) at the current base,
//!   landing verdicts in the striped cache where the climb's own
//!   probes find them. Speculative probes ride the injector at lower
//!   priority than round batches, carry the base version they were
//!   planned against (stale probes are dropped unexecuted), and
//!   **single-flight claims** ([`StripedVerdictCache::claim`]) ensure a
//!   probe in flight on one thread is awaited — never re-solved — by
//!   every other.
//! - **Deterministic merge** — the probe schedule is thread-count
//!   independent (fixed ladder width [`LADDER_PROBES`], batches formed
//!   in cone-index order, verdicts landed by rung slot, duplicate
//!   maxima dropped min-attempt-index first), so the reported analysis
//!   is byte-identical for every thread count. Parallelism and cache
//!   sharing change how *many* oracle calls run, never what the search
//!   concludes.
//!
//! Raising coordinate `i` only re-validates cones whose transitive
//! input support contains `i` (precomputed
//! [`Network::output_support_masks`]); every other cone inherits its
//! verdict from the current safe point. Safety is monotone decreasing
//! in the pointwise order, so verdict caches answer by dominance
//! ([`CacheStrategy::Dominance`], the default) and the per-coordinate
//! climb gallops: next rung, top rung, then bisect the frontier.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xrta_bdd::{BddError, FxHashMap};
use xrta_chi::{ChiSatEngine, EngineKind, FunctionalTiming, Stability};
use xrta_network::{Network, NodeId};
use xrta_sat::StopReason;
use xrta_timing::{required_times, DelayModel, TableDelay, Time};

use crate::dominance::{CacheStrategy, DominanceCache};
use crate::governor::{AnalysisError, Budget};
use crate::oracle_pool::StealQueues;
use crate::plan::plan_leaves;
use crate::stripes::{support_fingerprint, Claim, StripedVerdictCache};

/// Rungs probed per bisection round of the galloping ascent. Fixed (not
/// derived from the thread count) so the probe schedule — and with it
/// the whole search transcript — is identical for every thread count.
/// Two trisection probes per round also give every cone batch two rungs
/// to amortise its χ engine over.
const LADDER_PROBES: usize = 2;

/// Oracle calls a search must accumulate before helper threads spawn.
/// Trivial circuits finish their whole climb under this threshold and
/// never pay thread-spawn or hand-off latency.
const WARMUP_ORACLE_CALLS: usize = 48;

/// How many upcoming coordinates the climb speculates ahead of itself.
/// Each speculated coordinate is one step-1 probe (the "can it move at
/// all?" query that dominates the call profile), so the window bounds
/// wasted work when a raise succeeds and invalidates the base.
const SPEC_WINDOW: usize = 8;

/// Options for the lattice-climbing analysis.
#[derive(Clone, Copy, Debug)]
pub struct Approx2Options {
    /// Which χ engine validates candidates (the paper uses the SAT
    /// engine for scalability).
    pub engine: EngineKind,
    /// Also try `∞` ("never arrives") as the top candidate per input.
    pub allow_never: bool,
    /// Stop after this many maximal points.
    pub max_solutions: usize,
    /// Stop after this many oracle invocations.
    pub max_oracle_calls: usize,
    /// Wall-clock budget (the paper's 12-hour cap, scaled down). Also
    /// enforced *inside* long-running oracle probes, as an engine
    /// deadline.
    pub time_budget: Option<Duration>,
    /// SAT-conflict budget per oracle query; inconclusive queries count
    /// as unsafe (sound: a candidate is only accepted when provably
    /// safe). `None` = unlimited.
    pub oracle_conflict_budget: Option<u64>,
    /// Unit-propagation budget per oracle query — a hard wall-clock
    /// bound on multiplier-class χ networks. Same conservative
    /// treatment as the conflict budget. `None` = unlimited.
    pub oracle_propagation_budget: Option<u64>,
    /// Candidate clustering stride (the paper's conclusion: "group
    /// [required times] into clusters of neighboring required times
    /// conservatively; controlling the number of clusters gives a
    /// trade-off between accuracy and CPU time"). A stride of `k` keeps
    /// every `k`-th candidate per input (always keeping the bottom and,
    /// when enabled, the ∞ top). 1 = no clustering.
    pub cluster_stride: usize,
    /// Worker threads for cone validation. `0` = use
    /// [`std::thread::available_parallelism`]; `1` = fully sequential.
    /// Helpers spawn lazily once enough oracle work has accumulated and
    /// steal batches from each other; any value produces the same
    /// analysis.
    pub threads: usize,
    /// Verdict-cache strategy; see [`CacheStrategy`].
    pub cache: CacheStrategy,
}

impl Default for Approx2Options {
    fn default() -> Self {
        Approx2Options {
            engine: EngineKind::Sat,
            allow_never: true,
            max_solutions: 8,
            max_oracle_calls: 10_000,
            time_budget: None,
            oracle_conflict_budget: None,
            oracle_propagation_budget: None,
            cluster_stride: 1,
            threads: 0,
            cache: CacheStrategy::Dominance,
        }
    }
}

impl Approx2Options {
    /// Resolves [`Approx2Options::threads`] (`0` → available
    /// parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Worker slots the oracle pool actually provisions: the configured
    /// thread count clamped to the machine's parallelism. Cone probes
    /// are CPU-bound SAT/BDD solves, so oversubscribing cores only adds
    /// context switching and hand-off latency — a request for 4 threads
    /// on a 1-core box must run exactly like a request for 1 (and does:
    /// the probe schedule is thread-count independent). Setting
    /// `XRTA_OVERSUBSCRIBE` lifts the clamp — the analysis stays
    /// correct under any interleaving, so this exists to exercise and
    /// debug the multi-worker paths on small machines.
    fn worker_slots(&self) -> usize {
        if std::env::var_os("XRTA_OVERSUBSCRIBE").is_some() {
            return self.effective_threads();
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.effective_threads().min(cores)
    }
}

/// Result of the lattice-climbing analysis.
#[derive(Clone, Debug)]
pub struct Approx2Result {
    /// The topological bottom `r⊥` (per input, aligned with
    /// `net.inputs()`).
    pub r_bottom: Vec<Time>,
    /// Maximal safe points found (each dominates `r_bottom`).
    pub maximal: Vec<Vec<Time>>,
    /// The candidate rungs per input the climb searched over (aligned
    /// with `net.inputs()`; each starts at the bottom, increasing).
    pub candidates: Vec<Vec<Time>>,
    /// Wall time until the first validated `r ≠ r⊥`, if any (the
    /// "CPU time first r ≠ r⊥" column of the paper's Table 2).
    pub first_nontrivial: Option<Duration>,
    /// Total wall time of the search ("CPU time r_max").
    pub total_time: Duration,
    /// Oracle invocations (χ-engine runs; cache hits excluded).
    pub oracle_calls: usize,
    /// Safety queries answered from the verdict caches (whole-vector
    /// and per-cone combined) without running a χ engine.
    pub cache_hits: usize,
    /// Worker threads the search was configured to use.
    pub threads_used: usize,
    /// Batches an idle worker stole from a loaded sibling's deque.
    pub steals: usize,
    /// Striped-cache lock acquisitions that found the stripe held by
    /// another thread.
    pub shard_contention: usize,
    /// Oracle batches executed (each shares one χ engine across its
    /// probes).
    pub batches: usize,
    /// Probes that rode in a multi-rung batch (engine state reused).
    pub batched_probes: usize,
    /// Cone probes solved speculatively (ahead of the climb) by helper
    /// workers; their verdicts were served to the climb from the
    /// striped cache.
    pub spec_probes: usize,
    /// False when a budget cap stopped the enumeration early; the
    /// `maximal` found so far are still valid safe points.
    pub completed: bool,
    /// The governor cause that truncated the search, when a
    /// [`Budget`] deadline (rather than the options' own caps)
    /// stopped it. The partial `maximal` remain sound.
    pub stopped_by: Option<AnalysisError>,
    /// Cone validations that panicked; each read conservatively as
    /// "unsafe", so one poisoned cone cannot take down the session.
    pub worker_panics: usize,
}

impl Approx2Result {
    /// Did the analysis find any required time looser than topological?
    pub fn has_nontrivial_requirement(&self) -> bool {
        self.maximal.iter().any(|r| r != &self.r_bottom)
    }

    /// Fraction of safety queries answered without a χ-engine run.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.oracle_calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The maximal points as [`RequiredTimeTuple`]s (uniform deadlines,
    /// since this analysis is value-independent) — the same type the
    /// exact and parametric analyses report, for uniform consumption.
    pub fn maximal_conditions(&self) -> Vec<crate::types::RequiredTimeTuple> {
        self.maximal
            .iter()
            .map(|r| crate::types::RequiredTimeTuple::uniform(r))
            .collect()
    }
}

/// One output's standalone validation cone: a private network, delay
/// table and support mask, so the cone's χ engine can run on any thread
/// without touching shared state.
struct Cone {
    /// The cone as its own network (inputs = the original PIs feeding
    /// it).
    net: Network,
    /// The root output inside `net`.
    out: NodeId,
    /// Delays copied from the caller's model (cone node ids).
    delays: TableDelay,
    /// Original input positions, in `net.inputs()` order.
    input_pos: Vec<usize>,
    /// Support bitmask over original input positions.
    mask: Vec<u64>,
    /// Required time at this output.
    required: Time,
}

impl Cone {
    fn supports(&self, input_pos: usize) -> bool {
        (self.mask[input_pos / 64] >> (input_pos % 64)) & 1 == 1
    }
}

/// Governor state shared with every cone validation.
#[derive(Clone, Default)]
struct OracleGovernor {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    node_limit: Option<usize>,
    mem_limit: Option<u64>,
}

impl OracleGovernor {
    /// Budget interrupt pending? Polled between rounds and at batch
    /// entry.
    fn stop(&self) -> Option<AnalysisError> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(AnalysisError::Interrupted);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(AnalysisError::DeadlineExceeded);
            }
        }
        if let Some(limit) = self.mem_limit {
            if xrta_robust::mem::global().pressure(limit) == xrta_robust::mem::Pressure::Hard {
                return Some(AnalysisError::MemoryOut);
            }
        }
        None
    }

    /// Soft-pressure poll: true when the meter sits between the soft
    /// and hard watermarks, i.e. reclamation should run now so the
    /// search never has to be abandoned.
    fn soft_pressure(&self) -> bool {
        self.mem_limit.is_some_and(|limit| {
            xrta_robust::mem::global().pressure(limit) == xrta_robust::mem::Pressure::Soft
        })
    }
}

/// One unit of stealable oracle work: validate `rungs.len()` raises of
/// one coordinate against one cone, sharing a single χ engine.
struct Batch {
    /// Index into [`OracleShared::cones`].
    cone: usize,
    /// Position of the raised coordinate within the cone's projection.
    vary: usize,
    /// The cone's projected arrivals at the base point (the `vary`
    /// coordinate is overridden per rung).
    proj: Vec<Time>,
    /// `(rung slot, rung value)` pairs, slots indexing the caller's
    /// rung list.
    rungs: Vec<(usize, Time)>,
}

/// What one batch reports back. `verdicts` lands by rung slot;
/// `None` marks probes skipped because the rung was already disproved
/// by another cone, or cut off by a stop/budget condition.
struct BatchOut {
    verdicts: Vec<(usize, Option<bool>)>,
    /// Governor interrupt that must stop the whole search, if any.
    stop: Option<AnalysisError>,
    /// Did an options-level cap (oracle calls / wall clock) cut this
    /// batch short?
    truncated: bool,
    /// Probes that panicked inside this batch.
    panics: usize,
}

impl BatchOut {
    /// The conservative result of a batch whose worker died outside the
    /// per-probe containment: every probe reads "unsafe".
    fn poisoned(batch: &Batch) -> Self {
        BatchOut {
            verdicts: batch.rungs.iter().map(|&(k, _)| (k, Some(false))).collect(),
            stop: None,
            truncated: false,
            panics: batch.rungs.len(),
        }
    }
}

/// A speculative probe: the step-1 raise of an upcoming coordinate,
/// decomposed into the projections of every cone whose support contains
/// it. Executed at injector priority (below round batches); verdicts
/// land in the shared striped cache where the climb's own probes find
/// them. Speculation changes *when* a verdict is proven, never what it
/// says — every verdict is a pure fact about `(cone, projection)`.
struct SpecProbe {
    /// `(cone index, projected arrivals)` per relevant cone.
    cones: Vec<(usize, Vec<Time>)>,
    /// The base version this probe was planned against
    /// ([`OracleShared::spec_version`]); stale probes are dropped.
    version: u64,
}

/// What flows through the work-stealing queues: a round's cone batch
/// (coordinator awaits it at a barrier) or a speculative probe (fire
/// and forget into the cache).
enum Task {
    Round(Batch),
    Spec(SpecProbe),
}

/// Everything a worker needs, shared by `Arc`: the cones, the striped
/// verdict cache, the work queues and the global counters.
struct OracleShared {
    cones: Vec<Cone>,
    options: Approx2Options,
    gov: OracleGovernor,
    /// Earliest of the governor deadline and the options' own
    /// wall-clock budget; installed into every χ engine so a single
    /// long probe cannot blow through [`Approx2Options::time_budget`].
    engine_deadline: Option<Instant>,
    started: Instant,
    cache: StripedVerdictCache,
    oracle_calls: AtomicUsize,
    batches: AtomicUsize,
    batched_probes: AtomicUsize,
    /// Per-round bitmask of rung slots already proven unsafe by some
    /// cone; lets every other cone skip its probes for that rung
    /// (cross-cone short-circuit — the verdict is `false` either way).
    round_failed: AtomicU64,
    /// Bumped whenever the climb's base point changes; speculative
    /// probes planned against an older version are dropped unexecuted.
    spec_version: AtomicU64,
    /// Speculative cone probes actually solved (vs dropped stale).
    spec_solved: AtomicUsize,
    /// Panics inside speculative probes (folded into `worker_panics`).
    spec_panics: AtomicUsize,
    queues: StealQueues<Task>,
}

impl OracleShared {
    fn time_exhausted(&self) -> bool {
        self.options
            .time_budget
            .is_some_and(|b| self.started.elapsed() >= b)
    }

    /// Builds the batch's shared selector-guarded SAT engine, with the
    /// same fault-injection site the per-probe engines of the BDD path
    /// evaluate during construction.
    fn build_engine(&self, batch: &Batch, values: &[Time]) -> Result<ChiSatEngine, BddError> {
        match xrta_robust::failpoint::eval("chi::construct") {
            Some(xrta_robust::failpoint::Outcome::Exhausted) => {
                return Err(BddError::Capacity {
                    limit: self.gov.node_limit.unwrap_or(usize::MAX),
                })
            }
            Some(xrta_robust::failpoint::Outcome::ReturnError) => return Err(BddError::Deadline),
            None => {}
        }
        let cone = &self.cones[batch.cone];
        let mut eng = ChiSatEngine::new_varying(
            &cone.net,
            &cone.delays,
            batch.proj.clone(),
            batch.vary,
            values.to_vec(),
        );
        eng.set_conflict_budget(self.options.oracle_conflict_budget);
        eng.set_propagation_budget(self.options.oracle_propagation_budget);
        eng.set_deadline(self.engine_deadline);
        eng.set_cancel_flag(self.gov.cancel.clone());
        eng.set_mem_limit(self.gov.mem_limit);
        Ok(eng)
    }
}

/// Runs one batch on the calling thread. Every probe is individually
/// contained (`catch_unwind`); verdicts are pure functions of
/// `(cone, projection)` plus the per-query budgets, so any thread may
/// execute any batch without affecting what the search concludes.
fn execute_batch(shared: &OracleShared, batch: &Batch) -> BatchOut {
    let cone = &shared.cones[batch.cone];
    let values: Vec<Time> = batch.rungs.iter().map(|&(_, v)| v).collect();
    let mut out = BatchOut {
        verdicts: Vec::with_capacity(batch.rungs.len()),
        stop: None,
        truncated: false,
        panics: 0,
    };
    shared.batches.fetch_add(1, Ordering::Relaxed);
    if batch.rungs.len() > 1 {
        shared
            .batched_probes
            .fetch_add(batch.rungs.len(), Ordering::Relaxed);
    }
    out.stop = shared.gov.stop();
    let mut engine: Option<ChiSatEngine> = None;
    for (variant, &(k, value)) in batch.rungs.iter().enumerate() {
        if out.stop.is_some() || out.truncated {
            out.verdicts.push((k, None));
            continue;
        }
        if shared.round_failed.load(Ordering::Relaxed) >> k & 1 == 1 {
            // Another cone already disproved this rung; its verdict is
            // settled, skip the solve.
            out.verdicts.push((k, None));
            continue;
        }
        let mut proj = batch.proj.clone();
        proj[batch.vary] = value;
        // Single-flight claim: a hit may have been resolved by another
        // worker mid-round (including a speculative probe we waited
        // for); `Owner` obliges this probe to insert or abandon on
        // every exit path below so no waiter stalls.
        let owned = match shared.cache.claim(batch.cone, &proj) {
            Claim::Hit(v) => {
                if !v {
                    shared.round_failed.fetch_or(1 << k, Ordering::Relaxed);
                }
                out.verdicts.push((k, Some(v)));
                continue;
            }
            Claim::Owner => true,
            Claim::TimedOut => false,
        };
        let release = |shared: &OracleShared| {
            if owned {
                shared.cache.abandon(batch.cone, &proj);
            }
        };
        if shared.time_exhausted() {
            release(shared);
            out.truncated = true;
            out.verdicts.push((k, None));
            continue;
        }
        // Reserve one oracle call; undo on overshoot so the final count
        // never exceeds the cap even under concurrent reservation.
        let prior = shared.oracle_calls.fetch_add(1, Ordering::Relaxed);
        if prior >= shared.options.max_oracle_calls {
            shared.oracle_calls.fetch_sub(1, Ordering::Relaxed);
            release(shared);
            out.truncated = true;
            out.verdicts.push((k, None));
            continue;
        }
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<bool, BddError> {
            // Fault-injection site at the top of a cone probe: a
            // `panic` schedule exercises the catch_unwind the same way
            // a real poisoned cone would; `err`/`exhaust` forge the
            // corresponding oracle failures.
            match xrta_robust::failpoint::eval("approx2::cone") {
                Some(xrta_robust::failpoint::Outcome::Exhausted) => {
                    return Err(BddError::Capacity {
                        limit: shared.gov.node_limit.unwrap_or(usize::MAX),
                    })
                }
                Some(xrta_robust::failpoint::Outcome::ReturnError) => {
                    return Err(BddError::Deadline)
                }
                None => {}
            }
            match shared.options.engine {
                EngineKind::Sat => {
                    if engine.is_none() {
                        engine = Some(shared.build_engine(batch, &values)?);
                    }
                    let eng = engine.as_mut().expect("engine just built");
                    match eng.check_stable_variant(&cone.net, cone.out, cone.required, variant) {
                        Stability::Stable => Ok(true),
                        Stability::Unstable => Ok(false),
                        Stability::Unknown => match eng.last_stop_reason() {
                            Some(StopReason::Deadline) => Err(BddError::Deadline),
                            Some(StopReason::Cancelled) => Err(BddError::Cancelled),
                            Some(StopReason::MemoryOut) => Err(BddError::MemoryOut),
                            // Conflict/propagation budget exhausted:
                            // conservatively not provably safe.
                            _ => Ok(false),
                        },
                    }
                }
                EngineKind::Bdd => {
                    let ft = FunctionalTiming::new(
                        &cone.net,
                        &cone.delays,
                        proj.clone(),
                        EngineKind::Bdd,
                    )
                    .with_conflict_budget(shared.options.oracle_conflict_budget)
                    .with_propagation_budget(shared.options.oracle_propagation_budget)
                    .with_node_limit(shared.gov.node_limit)
                    .with_mem_limit(shared.gov.mem_limit)
                    .with_deadline(shared.engine_deadline)
                    .with_cancel_flag(shared.gov.cancel.clone());
                    ft.try_stable_by(cone.out, cone.required)
                }
            }
        }));
        match run {
            Ok(Ok(safe)) => {
                shared.cache.insert(batch.cone, &proj, safe);
                if !safe {
                    shared.round_failed.fetch_or(1 << k, Ordering::Relaxed);
                }
                out.verdicts.push((k, Some(safe)));
            }
            // Node budget: this cone alone is too big for its oracle —
            // conservatively unsafe, but keep searching (other cones
            // may still answer). Deterministic, hence cacheable.
            Ok(Err(BddError::Capacity { .. })) => {
                shared.cache.insert(batch.cone, &proj, false);
                shared.round_failed.fetch_or(1 << k, Ordering::Relaxed);
                out.verdicts.push((k, Some(false)));
            }
            Ok(Err(BddError::Deadline)) => {
                // The engine deadline is the tighter of the governor's
                // deadline and the options' own wall-clock budget —
                // attribute accordingly. Interrupt artifacts are not
                // cached (they are not facts about the cone).
                release(shared);
                if shared.gov.deadline.is_some_and(|d| Instant::now() >= d) {
                    out.stop = Some(AnalysisError::DeadlineExceeded);
                } else {
                    out.truncated = true;
                }
                out.verdicts.push((k, None));
            }
            Ok(Err(e)) => {
                release(shared);
                out.stop = Some(e.into());
                out.verdicts.push((k, None));
            }
            Err(_) => {
                // Poisoned cone: conservative "unsafe", drop the shared
                // engine (its solver state is suspect) and keep going.
                out.panics += 1;
                engine = None;
                shared.cache.insert(batch.cone, &proj, false);
                shared.round_failed.fetch_or(1 << k, Ordering::Relaxed);
                out.verdicts.push((k, Some(false)));
            }
        }
    }
    out
}

/// Runs one speculative probe on the calling thread. The verdicts it
/// proves are the same pure facts the round path would compute —
/// speculation changes *when* they are proven, never what they say.
/// Every single-flight claim is resolved (`insert`) or released
/// (`abandon`) on every exit path, so no waiter can stall on this
/// probe.
fn execute_spec(shared: &OracleShared, spec: &SpecProbe) {
    for (c, proj) in &spec.cones {
        if shared.spec_version.load(Ordering::Acquire) != spec.version {
            return; // Stale: the climb has moved its base since.
        }
        if shared.gov.stop().is_some() || shared.time_exhausted() {
            return;
        }
        let owned = match shared.cache.claim(*c, proj) {
            Claim::Hit(true) => continue,
            // One unsafe cone settles the whole vector; the remaining
            // cones' verdicts are not worth oracle budget.
            Claim::Hit(false) => return,
            Claim::Owner => true,
            Claim::TimedOut => false,
        };
        // Speculative probes draw from the same oracle-call budget as
        // the climb's own (the cap is a cap, not a per-path quota).
        let prior = shared.oracle_calls.fetch_add(1, Ordering::Relaxed);
        if prior >= shared.options.max_oracle_calls {
            shared.oracle_calls.fetch_sub(1, Ordering::Relaxed);
            if owned {
                shared.cache.abandon(*c, proj);
            }
            return;
        }
        let cone = &shared.cones[*c];
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<bool, BddError> {
            // Same fault-injection site as a round probe — a schedule
            // that poisons cone validations hits speculation too.
            match xrta_robust::failpoint::eval("approx2::cone") {
                Some(xrta_robust::failpoint::Outcome::Exhausted) => {
                    return Err(BddError::Capacity {
                        limit: shared.gov.node_limit.unwrap_or(usize::MAX),
                    })
                }
                Some(xrta_robust::failpoint::Outcome::ReturnError) => {
                    return Err(BddError::Deadline)
                }
                None => {}
            }
            // A fresh per-probe engine: speculation has no rung batch
            // to amortise a varying engine over, and `FunctionalTiming`
            // applies the identical verdict mapping (budget-exhausted
            // reads conservatively unsafe) for both engine kinds.
            let ft =
                FunctionalTiming::new(&cone.net, &cone.delays, proj.clone(), shared.options.engine)
                    .with_conflict_budget(shared.options.oracle_conflict_budget)
                    .with_propagation_budget(shared.options.oracle_propagation_budget)
                    .with_node_limit(shared.gov.node_limit)
                    .with_mem_limit(shared.gov.mem_limit)
                    .with_deadline(shared.engine_deadline)
                    .with_cancel_flag(shared.gov.cancel.clone());
            ft.try_stable_by(cone.out, cone.required)
        }));
        match run {
            Ok(Ok(safe)) => {
                shared.spec_solved.fetch_add(1, Ordering::Relaxed);
                shared.cache.insert(*c, proj, safe);
                if !safe {
                    return;
                }
            }
            // Deterministic budget verdict: cacheable, conservatively
            // unsafe (same as the round path).
            Ok(Err(BddError::Capacity { .. })) => {
                shared.spec_solved.fetch_add(1, Ordering::Relaxed);
                shared.cache.insert(*c, proj, false);
                return;
            }
            // Deadline/cancellation artifacts are not facts about the
            // cone; release the claim and let the coordinator attribute
            // the interrupt on its own probes.
            Ok(Err(_)) => {
                if owned {
                    shared.cache.abandon(*c, proj);
                }
                return;
            }
            Err(_) => {
                shared.spec_panics.fetch_add(1, Ordering::Relaxed);
                shared.cache.insert(*c, proj, false);
                return;
            }
        }
    }
}

/// Helper-thread main loop: pop (stealing when idle), execute, report.
/// Round batches answer back over the channel; speculative probes
/// resolve silently into the cache. Exits when the queues close.
fn worker_loop(shared: &OracleShared, w: usize, tx: mpsc::Sender<BatchOut>) {
    loop {
        let epoch = shared.queues.epoch();
        match shared.queues.pop(w) {
            Some(Task::Round(batch)) => {
                // `execute_batch` contains probe panics itself; this
                // outer net only exists so a worker that dies anyway
                // still sends a (conservative) result and cannot wedge
                // the round.
                let out = catch_unwind(AssertUnwindSafe(|| execute_batch(shared, &batch)))
                    .unwrap_or_else(|_| BatchOut::poisoned(&batch));
                if tx.send(out).is_err() {
                    return;
                }
            }
            Some(Task::Spec(spec)) => {
                // Contained like a batch; a panic that escapes the
                // per-probe net may leave one claim pending, which
                // waiters shed via the claim timeout.
                let _ = catch_unwind(AssertUnwindSafe(|| execute_spec(shared, &spec)));
            }
            None => {
                if !shared.queues.wait(epoch) {
                    return;
                }
            }
        }
    }
}

struct Search {
    shared: Arc<OracleShared>,
    candidates: Vec<Vec<Time>>,
    r_bottom: Vec<Time>,
    /// Whole-vector verdict caches (coordinator-only; per-cone verdicts
    /// live in the shared striped cache).
    exact_full: FxHashMap<Vec<Time>, bool>,
    dom_full: DominanceCache,
    full_hits: usize,
    first_nontrivial: Option<Duration>,
    out_of_budget: bool,
    interrupted: Option<AnalysisError>,
    worker_panics: usize,
    /// Last [`OracleShared::spec_version`] speculation was planned
    /// against; a mismatch resets the window.
    spec_version_seen: u64,
    /// Rotation index (within the current climb pass) up to which
    /// step-1 speculation has been enqueued for the current base.
    spec_upto: usize,
    /// Lazily spawned helper threads (slots `1..` of the queues).
    helpers: Vec<JoinHandle<()>>,
    tx: mpsc::Sender<BatchOut>,
    rx: mpsc::Receiver<BatchOut>,
}

impl Search {
    fn options(&self) -> &Approx2Options {
        &self.shared.options
    }

    fn project(&self, cone: usize, r: &[Time]) -> Vec<Time> {
        self.shared.cones[cone]
            .input_pos
            .iter()
            .map(|&p| r[p])
            .collect()
    }

    fn query_full(&mut self, r: &[Time]) -> Option<bool> {
        match self.options().cache {
            CacheStrategy::Exact => self.exact_full.get(r).copied(),
            CacheStrategy::Dominance => self.dom_full.query(r),
        }
    }

    /// Non-counting [`Search::query_full`] — speculation planning must
    /// not inflate the reported hit counters.
    fn peek_full(&self, r: &[Time]) -> Option<bool> {
        match self.options().cache {
            CacheStrategy::Exact => self.exact_full.get(r).copied(),
            CacheStrategy::Dominance => self.dom_full.peek(r),
        }
    }

    fn record_full(&mut self, r: &[Time], safe: bool) {
        match self.options().cache {
            CacheStrategy::Exact => {
                self.exact_full.insert(r.to_vec(), safe);
            }
            CacheStrategy::Dominance => self.dom_full.insert(r, safe),
        }
        if safe && self.first_nontrivial.is_none() && r != self.r_bottom.as_slice() {
            self.first_nontrivial = Some(self.shared.started.elapsed());
        }
    }

    /// Spawns the helper threads (slots `1..` of the queues), once.
    fn spawn_helpers(&mut self) {
        let slots = self.shared.queues.workers();
        for w in 1..slots {
            let shared = Arc::clone(&self.shared);
            let tx = self.tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("xrta-oracle-{w}"))
                .spawn(move || worker_loop(&shared, w, tx))
                .expect("spawn oracle worker");
            self.helpers.push(handle);
        }
    }

    /// Closes the queues and joins the helpers. Round batches are
    /// always drained between rounds; the version bump makes any
    /// still-queued speculative probes drop on dequeue, so join waits
    /// for at most one in-flight probe per helper.
    fn shutdown(&mut self) {
        self.bump_spec_version();
        self.shared.queues.close();
        for h in self.helpers.drain(..) {
            let _ = h.join();
        }
    }

    /// Executes one round of batches and collects every result (a
    /// barrier: the queues are empty again when this returns). Inline
    /// on the calling thread while the frontier is trivial; otherwise
    /// batches are seeded round-robin across the worker deques and the
    /// coordinator participates, with idle workers stealing.
    fn run_round(&mut self, batches: Vec<Batch>) -> Vec<BatchOut> {
        self.shared.round_failed.store(0, Ordering::Relaxed);
        let n = batches.len();
        let slots = self.shared.queues.workers();
        let warm = self.shared.oracle_calls.load(Ordering::Relaxed) >= WARMUP_ORACLE_CALLS;
        let engage = slots > 1 && n > 1 && (warm || !self.helpers.is_empty());
        if !engage {
            // Single batch, single thread, or a still-cold search:
            // execute in cone order on this thread (the cross-cone
            // short-circuit still applies via `round_failed`).
            return batches
                .iter()
                .map(|b| execute_batch(&self.shared, b))
                .collect();
        }
        if self.helpers.is_empty() {
            self.spawn_helpers();
        }
        for (j, b) in batches.into_iter().enumerate() {
            self.shared.queues.push_local(j % slots, Task::Round(b));
        }
        let mut outs = Vec::with_capacity(n);
        while outs.len() < n {
            // `pop_round`, not `pop`: the coordinator is awaiting this
            // round's barrier and must not pick up a long speculative
            // probe from the injector while batches are outstanding.
            if let Some(task) = self.shared.queues.pop_round(0) {
                match task {
                    Task::Round(batch) => outs.push(execute_batch(&self.shared, &batch)),
                    // Specs never land in worker deques, but stay total.
                    Task::Spec(spec) => execute_spec(&self.shared, &spec),
                }
            } else {
                match self.rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(out) => outs.push(out),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    // Unreachable (we hold a sender), but never hang.
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        outs
    }

    /// Plans speculative step-1 probes for the next [`SPEC_WINDOW`]
    /// coordinates of the rotation at the current base `r`, pushing
    /// them to the injector for idle workers. No-op until the search is
    /// warm (trivial circuits stay single-threaded). `k` is the
    /// rotation index about to be climbed.
    ///
    /// **Waste-freedom.** A speculated probe for coordinate `j` is only
    /// planned for cones whose support is *disjoint* from every
    /// coordinate the climb may raise before it reaches `j` (rotation
    /// positions `k..j`). Raising any of those coordinates cannot
    /// change such a cone's projection, and `r[j]` itself only moves
    /// when the climb ascends `j` — so the planned `(cone, projection)`
    /// is exactly the probe the climb's own step-1 round will need.
    /// Speculation therefore shifts oracle calls earlier in time but
    /// adds none: the parallel call count tracks the sequential one by
    /// construction, instead of gambling on a base that dense circuits
    /// invalidate constantly.
    fn maybe_speculate(&mut self, r: &[Time], start: usize, k: usize) {
        let slots = self.shared.queues.workers();
        if slots <= 1
            || self.shared.oracle_calls.load(Ordering::Relaxed) < WARMUP_ORACLE_CALLS
            || self.out_of_budget
        {
            return;
        }
        if self.helpers.is_empty() {
            self.spawn_helpers();
        }
        let version = self.shared.spec_version.load(Ordering::Acquire);
        if version != self.spec_version_seen {
            // Base moved: whatever was enqueued before is stale (the
            // workers drop it); re-plan the window at the new base.
            self.spec_version_seen = version;
            self.spec_upto = 0;
        }
        let n = r.len();
        let from = self.spec_upto.max(k + 1);
        let to = (k + 1 + SPEC_WINDOW).min(n);
        if from >= to {
            return;
        }
        // Union of the supports that may move before the climb reaches
        // each speculated coordinate: positions k..j in rotation order.
        let words = self.shared.cones.first().map_or(0, |c| c.mask.len());
        let mut blocked = vec![0u64; words.max(1)];
        let mark = |blocked: &mut [u64], pos: usize| {
            blocked[pos / 64] |= 1 << (pos % 64);
        };
        // Positions before `k` were already climbed this pass and stay
        // put until after `j` is probed; only `k..from` may still move.
        for j in k..from {
            mark(&mut blocked, (start + j) % n);
        }
        for j in from..to {
            mark(&mut blocked, (start + j - 1) % n);
            let i = (start + j) % n;
            let cands = &self.candidates[i];
            let Some(pos) = cands.iter().position(|&c| c == r[i]) else {
                continue;
            };
            if pos + 1 >= cands.len() {
                continue; // already at the top
            }
            let mut v = r.to_vec();
            v[i] = cands[pos + 1];
            if self.peek_full(&v).is_some() {
                continue; // the climb will answer this from the caches
            }
            let cones: Vec<(usize, Vec<Time>)> = (0..self.shared.cones.len())
                .filter(|&c| {
                    let cone = &self.shared.cones[c];
                    cone.supports(i) && cone.mask.iter().zip(&blocked).all(|(m, b)| m & b == 0)
                })
                .map(|c| (c, self.project(c, &v)))
                .collect();
            if cones.is_empty() {
                continue;
            }
            self.shared
                .queues
                .push(Task::Spec(SpecProbe { cones, version }));
        }
        self.spec_upto = self.spec_upto.max(to);
    }

    /// Declares the climb's base point changed: in-flight and queued
    /// speculative probes against the old base are dropped, and the
    /// next [`Search::maybe_speculate`] re-plans its window.
    fn bump_spec_version(&self) {
        self.shared.spec_version.fetch_add(1, Ordering::Release);
    }

    /// Safety verdicts for raising coordinate `i` of the **safe** point
    /// `base` to each value in `rungs`. Only cones whose support
    /// contains `i` are re-validated; every other cone inherits its
    /// verdict from `base` (the incremental re-check). Returns `None`
    /// when a budget stops evaluation.
    fn probe_rungs(&mut self, base: &[Time], i: usize, rungs: &[Time]) -> Option<Vec<bool>> {
        assert!(rungs.len() <= 64, "round bitmask width");
        if let Some(e) = self.shared.gov.stop() {
            self.interrupted.get_or_insert(e);
            self.out_of_budget = true;
            return None;
        }
        if self.shared.time_exhausted() {
            self.out_of_budget = true;
            return None;
        }
        // Soft memory pressure: shed the verdict cache in place before
        // this round rather than letting the hard watermark end the
        // search. Verdicts are re-derivable, so this only costs refills.
        if self.shared.gov.soft_pressure() {
            self.shared.cache.reclaim();
        }
        let relevant: Vec<usize> = (0..self.shared.cones.len())
            .filter(|&c| self.shared.cones[c].supports(i))
            .collect();
        // Per rung: Some(verdict) once known, else the cones still
        // needing an oracle run.
        let mut verdicts: Vec<Option<bool>> = Vec::with_capacity(rungs.len());
        let mut unresolved: Vec<Vec<usize>> = Vec::with_capacity(rungs.len());
        for &rung in rungs {
            let mut v = base.to_vec();
            v[i] = rung;
            if let Some(known) = self.query_full(&v) {
                self.full_hits += 1;
                verdicts.push(Some(known));
                unresolved.push(Vec::new());
                continue;
            }
            let mut todo = Vec::new();
            let mut known_unsafe = false;
            for &c in &relevant {
                let proj = self.project(c, &v);
                match self.shared.cache.query(c, &proj) {
                    Some(true) => {}
                    Some(false) => {
                        known_unsafe = true;
                        break;
                    }
                    None => todo.push(c),
                }
            }
            if known_unsafe {
                verdicts.push(Some(false));
                self.record_full(&v, false);
                unresolved.push(Vec::new());
            } else if todo.is_empty() {
                verdicts.push(Some(true));
                self.record_full(&v, true);
                unresolved.push(Vec::new());
            } else {
                verdicts.push(None);
                unresolved.push(todo);
            }
        }
        if unresolved.iter().any(|u| !u.is_empty()) {
            // One batch per cone, in cone-index order, carrying every
            // rung that still needs this cone's verdict.
            let mut batches: Vec<Batch> = Vec::new();
            for &c in &relevant {
                let pending: Vec<(usize, Time)> = (0..rungs.len())
                    .filter(|&k| unresolved[k].contains(&c))
                    .map(|k| (k, rungs[k]))
                    .collect();
                if pending.is_empty() {
                    continue;
                }
                let vary = self.shared.cones[c]
                    .input_pos
                    .iter()
                    .position(|&p| p == i)
                    .expect("cone supports the raised coordinate");
                batches.push(Batch {
                    cone: c,
                    vary,
                    proj: self.project(c, base),
                    rungs: pending,
                });
            }
            let outs = self.run_round(batches);
            let mut rung_unsafe = vec![false; rungs.len()];
            let mut stop: Option<AnalysisError> = None;
            let mut truncated = false;
            for out in outs {
                self.worker_panics += out.panics;
                for (k, v) in out.verdicts {
                    if v == Some(false) {
                        rung_unsafe[k] = true;
                    }
                }
                if let Some(e) = out.stop {
                    stop.get_or_insert(e);
                }
                truncated |= out.truncated;
            }
            if let Some(e) = stop {
                self.interrupted.get_or_insert(e);
                self.out_of_budget = true;
                return None;
            }
            if truncated {
                self.out_of_budget = true;
                return None;
            }
            let failed_mask = self.shared.round_failed.load(Ordering::Relaxed);
            for (k, verdict) in verdicts.iter_mut().enumerate() {
                if verdict.is_none() {
                    let safe = !rung_unsafe[k] && failed_mask >> k & 1 == 0;
                    let mut v = base.to_vec();
                    v[i] = rungs[k];
                    self.record_full(&v, safe);
                    *verdict = Some(safe);
                }
            }
        }
        Some(verdicts.into_iter().map(|v| v.expect("resolved")).collect())
    }

    /// Raises coordinate `i` of the safe point `r` as far as it goes.
    /// Returns whether it moved.
    fn ascend(&mut self, r: &mut [Time], i: usize) -> bool {
        let cands = self.candidates[i].clone();
        let pos = cands.iter().position(|&c| c == r[i]).expect("on lattice");
        if pos + 1 >= cands.len() {
            return false;
        }
        match self.options().cache {
            CacheStrategy::Exact => self.ascend_linear(r, i, &cands, pos),
            CacheStrategy::Dominance => self.ascend_ladder(r, i, &cands, pos),
        }
    }

    /// Rung-by-rung ascent (the original exact-key behaviour).
    fn ascend_linear(&mut self, r: &mut [Time], i: usize, cands: &[Time], pos: usize) -> bool {
        let mut cur = pos;
        while cur + 1 < cands.len() {
            match self.probe_rungs(r, i, &cands[cur + 1..cur + 2]) {
                Some(v) if v[0] => {
                    cur += 1;
                    r[i] = cands[cur];
                }
                _ => break,
            }
        }
        cur > pos
    }

    /// Galloping ascent exploiting monotonicity: next rung, then top
    /// rung, then a binary search of the frontier in between, probing
    /// [`LADDER_PROBES`] evenly spaced rungs per round. The probe width
    /// is fixed — never derived from the thread count — so the search
    /// transcript is identical for every thread count; parallelism only
    /// spreads a round's cone batches across workers.
    fn ascend_ladder(&mut self, r: &mut [Time], i: usize, cands: &[Time], pos: usize) -> bool {
        // Step 1: the immediate next rung (cheap "cannot move" exit —
        // the common case on tight coordinates).
        match self.probe_rungs(r, i, &cands[pos + 1..pos + 2]) {
            Some(v) if v[0] => r[i] = cands[pos + 1],
            _ => return false,
        }
        let mut lo = pos + 1; // highest rung verified safe
        let top = cands.len() - 1;
        if lo == top {
            return true;
        }
        // Step 2: the top rung (∞ when allow_never) — one probe jumps
        // the whole ladder when the coordinate is unconstrained.
        match self.probe_rungs(r, i, &cands[top..top + 1]) {
            Some(v) if v[0] => {
                r[i] = cands[top];
                return true;
            }
            Some(_) => {}
            None => {
                r[i] = cands[lo];
                return true;
            }
        }
        let mut hi = top; // lowest rung verified unsafe
                          // Step 3: bisect (lo, hi) with a fixed number
                          // of probes per round.
        while hi - lo > 1 {
            let k = LADDER_PROBES.min(hi - lo - 1).max(1);
            let mut picks: Vec<usize> = (1..=k)
                .map(|j| (lo + j * (hi - lo) / (k + 1)).clamp(lo + 1, hi - 1))
                .collect();
            picks.dedup();
            let rungs: Vec<Time> = picks.iter().map(|&ix| cands[ix]).collect();
            let Some(verdicts) = self.probe_rungs(r, i, &rungs) else {
                break;
            };
            for (&ix, &safe) in picks.iter().zip(&verdicts) {
                if safe {
                    lo = lo.max(ix);
                } else {
                    hi = hi.min(ix);
                }
            }
            if lo >= hi {
                // Only possible when per-query budgets made verdicts
                // non-monotone; `lo` itself was verified safe, stop here.
                break;
            }
        }
        r[i] = cands[lo];
        true
    }

    /// Greedy ascent from `r` to one maximal safe point.
    fn climb(&mut self, r: Vec<Time>) -> Vec<Time> {
        self.climb_rotated(r, 0)
    }

    /// Bounded enumeration of maximal safe points (§4.3's backtracking
    /// refinement, capped): up to `max_solutions` greedy climbs, each
    /// visiting the coordinates in a different rotation so incomparable
    /// maxima are found when the raise order matters. Duplicates merge
    /// min-attempt-index first, so the reported order is deterministic.
    /// Exhaustive DFS over the lattice is avoided — on wide circuits
    /// the number of intermediate safe points is combinatorial.
    fn enumerate(&mut self, bottom: Vec<Time>) -> Vec<Vec<Time>> {
        let n = bottom.len().max(1);
        let mut maximal: Vec<Vec<Time>> = Vec::new();
        let max_solutions = self.options().max_solutions;
        for attempt in 0..max_solutions {
            if self.out_of_budget {
                break;
            }
            let start = (attempt * n) / max_solutions.max(1);
            let m = self.climb_rotated(bottom.clone(), start);
            if !maximal.contains(&m) {
                maximal.push(m);
            }
        }
        maximal
    }

    /// Greedy ascent visiting coordinates starting from index `start`.
    /// The climb itself is sequential (each raise depends on the last
    /// verdict); speculation keeps the helpers busy pre-solving the
    /// step-1 probes of the coordinates just ahead, and every base
    /// change invalidates what they haven't started yet.
    fn climb_rotated(&mut self, mut r: Vec<Time>, start: usize) -> Vec<Time> {
        let n = r.len();
        self.bump_spec_version();
        loop {
            let mut progressed = false;
            self.spec_upto = 0;
            for k in 0..n {
                let i = (start + k) % n;
                self.maybe_speculate(&r, start, k);
                if self.ascend(&mut r, i) {
                    progressed = true;
                    self.bump_spec_version();
                }
                if self.out_of_budget {
                    return r;
                }
            }
            if !progressed {
                return r;
            }
        }
    }
}

/// Runs the lattice-climbing analysis of §4.3.
///
/// The candidate set per input is the merged leaf-time list of the
/// planning pass (the times at which χ leaves are referenced), whose
/// minimum is the topological required time; `∞` is appended when
/// [`Approx2Options::allow_never`] is set. See the module docs for the
/// oracle architecture (per-cone engines, work-stealing workers, shared
/// striped dominance cache).
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx2_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: Approx2Options,
) -> Approx2Result {
    approx2_required_times_governed(net, model, output_required, options, &Budget::unlimited())
        .expect("ungoverned analysis cannot be interrupted")
}

/// Budget-governed form of [`approx2_required_times`]. The budget's
/// deadline and cancel flag are polled between validation rounds *and*
/// inside the per-cone engines; its SAT conflict budget tightens
/// [`Approx2Options::oracle_conflict_budget`] and its node limit bounds
/// the BDD oracle. A deadline yields `Ok` with the sound partial result
/// (provenance in [`Approx2Result::stopped_by`]); cancellation yields
/// [`AnalysisError::Interrupted`].
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx2_required_times_governed<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    mut options: Approx2Options,
    budget: &Budget,
) -> Result<Approx2Result, AnalysisError> {
    assert_eq!(output_required.len(), net.outputs().len());
    if budget.is_cancelled() {
        return Err(AnalysisError::Interrupted);
    }
    options.oracle_conflict_budget = match (options.oracle_conflict_budget, budget.sat_conflicts())
    {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let started = Instant::now();
    let plan = plan_leaves(net, model, output_required, |_| true);
    let topo_net = required_times(net, model, output_required);
    let r_bottom: Vec<Time> = net.inputs().iter().map(|i| topo_net[i.index()]).collect();
    let candidates: Vec<Vec<Time>> = plan
        .per_input
        .iter()
        .zip(&r_bottom)
        .map(|(lt, &bot)| {
            let mut c = lt.merged();
            if c.is_empty() || c[0] != bot {
                // Inputs outside every cone have no planned times; their
                // bottom is ∞ already.
                c.insert(0, bot);
                c.dedup();
            }
            if options.cluster_stride > 1 && c.len() > 2 {
                // Conservative coarsening: keep the bottom plus every
                // stride-th candidate (dropping a candidate only removes
                // an intermediate rung — the search stays sound, merely
                // less precise).
                let stride = options.cluster_stride;
                let kept: Vec<Time> = c
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % stride == 0 || *i + 1 == c.len())
                    .map(|(_, &t)| t)
                    .collect();
                c = kept;
            }
            if options.allow_never && *c.last().expect("non-empty") != Time::INF {
                c.push(Time::INF);
            }
            c
        })
        .collect();

    // Input positions in each output's transitive fanin cone.
    let input_pos_of: FxHashMap<usize, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(pos, id)| (id.index(), pos))
        .collect();
    let masks = net.output_support_masks();
    // One standalone validation cone per finite-required output
    // (∞-required outputs constrain nothing).
    let cones: Vec<Cone> = net
        .outputs()
        .iter()
        .enumerate()
        .filter(|&(oi, _)| !output_required[oi].is_inf())
        .map(|(oi, &o)| {
            let (cnet, map) = net.extract_cone(&[o]);
            let rev: FxHashMap<usize, usize> = map
                .iter()
                .map(|(old, new)| (new.index(), old.index()))
                .collect();
            let input_pos: Vec<usize> = cnet
                .inputs()
                .iter()
                .map(|nid| input_pos_of[&rev[&nid.index()]])
                .collect();
            let mut delays = TableDelay::with_default(&cnet, 0);
            for (old, new) in &map {
                delays.set(*new, model.delay(net, *old));
            }
            Cone {
                out: map[&o],
                net: cnet,
                delays,
                input_pos,
                mask: masks[oi].clone(),
                required: output_required[oi],
            }
        })
        .collect();

    let n_cones = cones.len();
    let fingerprints: Vec<u64> = cones
        .iter()
        .enumerate()
        .map(|(c, cone)| support_fingerprint(c, &cone.mask))
        .collect();
    let gov = OracleGovernor {
        deadline: budget.deadline(),
        cancel: Some(budget.cancel_flag()),
        node_limit: budget.node_limit(),
        mem_limit: budget.mem_limit(),
    };
    let time_cap = options.time_budget.map(|b| started + b);
    let engine_deadline = match (gov.deadline, time_cap) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let shared = Arc::new(OracleShared {
        cones,
        options,
        gov,
        engine_deadline,
        started,
        cache: StripedVerdictCache::new(options.cache, &fingerprints),
        oracle_calls: AtomicUsize::new(0),
        batches: AtomicUsize::new(0),
        batched_probes: AtomicUsize::new(0),
        round_failed: AtomicU64::new(0),
        spec_version: AtomicU64::new(0),
        spec_solved: AtomicUsize::new(0),
        spec_panics: AtomicUsize::new(0),
        queues: StealQueues::new(options.worker_slots()),
    });
    let (tx, rx) = mpsc::channel();
    let mut search = Search {
        shared: Arc::clone(&shared),
        candidates,
        r_bottom: r_bottom.clone(),
        exact_full: FxHashMap::default(),
        dom_full: DominanceCache::new(),
        full_hits: 0,
        first_nontrivial: None,
        out_of_budget: false,
        interrupted: None,
        worker_panics: 0,
        spec_version_seen: 0,
        spec_upto: 0,
        helpers: Vec::new(),
        tx,
        rx,
    };

    // The bottom is safe by construction (topological analysis is
    // conservative); seed the caches so a conflict budget cannot make
    // the search reject its own starting point.
    search.record_full(&r_bottom, true);
    for c in 0..n_cones {
        let proj = search.project(c, &r_bottom);
        shared.cache.insert(c, &proj, true);
    }

    let maximal = if options.max_solutions <= 1 {
        vec![search.climb(r_bottom.clone())]
    } else {
        let mut m = search.enumerate(r_bottom.clone());
        if m.is_empty() {
            m.push(search.climb(r_bottom.clone()));
        }
        m
    };

    search.shutdown();

    if search.interrupted == Some(AnalysisError::Interrupted) {
        // Cancellation means "stop, the caller no longer wants an
        // answer" — unlike a deadline, there is no one left to use a
        // partial result.
        return Err(AnalysisError::Interrupted);
    }

    Ok(Approx2Result {
        r_bottom,
        maximal,
        candidates: search.candidates,
        first_nontrivial: search.first_nontrivial,
        total_time: started.elapsed(),
        oracle_calls: shared.oracle_calls.load(Ordering::Relaxed),
        cache_hits: search.full_hits + shared.cache.hits(),
        threads_used: options.effective_threads(),
        steals: shared.queues.steals(),
        shard_contention: shared.cache.contention(),
        batches: shared.batches.load(Ordering::Relaxed),
        batched_probes: shared.batched_probes.load(Ordering::Relaxed),
        spec_probes: shared.spec_solved.load(Ordering::Relaxed),
        completed: !search.out_of_budget,
        stopped_by: search.interrupted,
        worker_panics: search.worker_panics + shared.spec_panics.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    /// The canonical two-MUX bypass false path (see `xrta-chi`): the
    /// slow input x can arrive later than topological analysis says.
    fn mux_false_path() -> Network {
        let mut net = Network::new("fp");
        let s = net.add_input("s").unwrap();
        let x = net.add_input("x").unwrap();
        let c = net.add_input("c").unwrap();
        let b1 = net.add_gate("b1", GateKind::Buf, &[x]).unwrap();
        let b2 = net.add_gate("b2", GateKind::Buf, &[b1]).unwrap();
        let m1 = net.add_gate("m1", GateKind::Mux, &[s, x, b2]).unwrap();
        let z = net.add_gate("z", GateKind::Mux, &[s, m1, c]).unwrap();
        net.mark_output(z);
        net
    }

    #[test]
    fn fig4_value_independent_search_is_trivial() {
        // The §4.3 implementation searches value-independent times; for
        // Figure 4 the looseness is value-dependent only, so the climb
        // stays at r⊥ — matching the paper's observation that approx 1
        // can beat approx 2 on such circuits.
        let net = fig4();
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(2)], Approx2Options::default());
        assert_eq!(r.r_bottom, vec![Time::new(0), Time::new(0)]);
        assert!(!r.has_nontrivial_requirement());
        assert!(r.completed);
    }

    #[test]
    fn false_path_circuit_gives_loose_times() {
        let net = mux_false_path();
        let topo_req = Time::new(4);
        let r = approx2_required_times(&net, &UnitDelay, &[topo_req], Approx2Options::default());
        // Topological: x must arrive by 4 − 4 = 0. The false path lets
        // it arrive later in every maximal condition.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        assert!(r.has_nontrivial_requirement());
        // Several incomparable maximal points may exist (e.g. raising s
        // instead of x); at least one must loosen x.
        assert!(
            r.maximal.iter().any(|m| m[x_pos] > Time::new(0)),
            "x loosened in some maximal point: {:?}",
            r.maximal
        );
        assert!(r.first_nontrivial.is_some());
    }

    #[test]
    fn maximal_points_are_safe_and_unraisable() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let opts = Approx2Options::default();
        let r = approx2_required_times(&net, &UnitDelay, &req, opts);
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req), "maximal point {m:?} must be safe");
            // Unraisable: the next candidate rung of every coordinate is
            // unsafe.
            for (i, cands) in r.candidates.iter().enumerate() {
                let pos = cands.iter().position(|&c| c == m[i]).expect("on lattice");
                if pos + 1 < cands.len() {
                    let mut up = m.clone();
                    up[i] = cands[pos + 1];
                    let ft = FunctionalTiming::new(&net, &UnitDelay, up, EngineKind::Bdd);
                    assert!(!ft.meets(&req), "raise of coord {i} from {m:?} still safe");
                }
            }
        }
    }

    #[test]
    fn engines_agree() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let sat = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Sat,
                ..Approx2Options::default()
            },
        );
        let bdd = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Bdd,
                ..Approx2Options::default()
            },
        );
        let norm = |mut v: Vec<Vec<Time>>| {
            v.sort();
            v
        };
        assert_eq!(norm(sat.maximal), norm(bdd.maximal));
    }

    #[test]
    fn cache_strategies_find_identical_maximal_sets() {
        for threads in [1usize, 3] {
            let net = mux_false_path();
            let req = [Time::new(4)];
            let exact = approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    cache: CacheStrategy::Exact,
                    threads,
                    ..Approx2Options::default()
                },
            );
            let dom = approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    cache: CacheStrategy::Dominance,
                    threads,
                    ..Approx2Options::default()
                },
            );
            assert_eq!(exact.maximal, dom.maximal, "threads = {threads}");
            // The dominance cache must not need more oracle runs than the
            // exact-key baseline.
            assert!(
                dom.oracle_calls <= exact.oracle_calls,
                "dominance {} vs exact {} oracle calls",
                dom.oracle_calls,
                exact.oracle_calls
            );
        }
    }

    #[test]
    fn thread_counts_agree() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let run = |threads| {
            approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    threads,
                    ..Approx2Options::default()
                },
            )
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.maximal, par.maximal);
        assert_eq!(seq.r_bottom, par.r_bottom);
        assert_eq!(par.threads_used, 4);
    }

    #[test]
    fn oracle_budget_respected() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_oracle_calls: 2,
                ..Approx2Options::default()
            },
        );
        assert!(r.oracle_calls <= 2);
        assert!(!r.completed);
    }

    #[test]
    fn single_solution_mode_climbs_greedily() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_solutions: 1,
                ..Approx2Options::default()
            },
        );
        assert_eq!(r.maximal.len(), 1);
        let m = &r.maximal[0];
        // Greedy result must dominate the bottom.
        assert!(m.iter().zip(&r.r_bottom).all(|(a, b)| a >= b));
    }

    #[test]
    fn clustering_is_sound_but_coarser() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let full = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
        let clustered = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                cluster_stride: 2,
                ..Approx2Options::default()
            },
        );
        // Clustered results are still safe…
        for m in &clustered.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req));
        }
        // …and never use more oracle calls than the full lattice needs
        // more rungs for.
        assert!(clustered.oracle_calls <= full.oracle_calls + 2);
    }

    #[test]
    fn table_delay_model_respected() {
        use xrta_timing::TableDelay;
        // Make the bypass buffers free: the "slow" branch stops being
        // slow and the topological bottom shifts accordingly.
        let net = mux_false_path();
        let mut model = TableDelay::with_default(&net, 1);
        for name in ["b1", "b2"] {
            model.set(net.find(name).unwrap(), 0);
        }
        let r = approx2_required_times(&net, &model, &[Time::new(2)], Approx2Options::default());
        // x's topological requirement: through m1 (delay 1) + z (1) with
        // free buffers → req(x) = 0.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &model, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&[Time::new(2)]));
        }
    }

    #[test]
    fn never_candidate_found_for_unobserved_input() {
        // An input that no output depends on can arrive at ∞.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let bb = net.add_gate("bb", GateKind::Buf, &[b]).unwrap();
        let z = net.add_gate("z", GateKind::Buf, &[a]).unwrap();
        net.mark_output(z);
        let _ = bb;
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(1)], Approx2Options::default());
        let b_pos = 1;
        assert!(r.maximal.iter().all(|m| m[b_pos].is_inf()));
    }

    #[test]
    fn dominance_reports_cache_hits() {
        let net = mux_false_path();
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(4)], Approx2Options::default());
        // Rotated restarts re-traverse the region below the first
        // maximal point — the dominance cache must absorb some of it.
        assert!(r.cache_hits > 0);
        assert!(r.cache_hit_rate() > 0.0 && r.cache_hit_rate() < 1.0);
    }

    /// `width` parallel mux-bypass slices sharing a select line and
    /// chaining data inputs — enough cones and rungs to push the
    /// oracle past its warm-up threshold.
    fn wide_bypass(width: usize) -> Network {
        let mut net = Network::new("wide");
        let s = net.add_input("s").unwrap();
        let xs: Vec<NodeId> = (0..=width)
            .map(|i| net.add_input(format!("x{i}").as_str()).unwrap())
            .collect();
        for i in 0..width {
            let b1 = net
                .add_gate(format!("b1_{i}").as_str(), GateKind::Buf, &[xs[i]])
                .unwrap();
            let b2 = net
                .add_gate(format!("b2_{i}").as_str(), GateKind::Buf, &[b1])
                .unwrap();
            let m1 = net
                .add_gate(format!("m1_{i}").as_str(), GateKind::Mux, &[s, xs[i], b2])
                .unwrap();
            let z = net
                .add_gate(format!("z{i}").as_str(), GateKind::Mux, &[s, m1, xs[i + 1]])
                .unwrap();
            net.mark_output(z);
        }
        net
    }

    #[test]
    fn oversubscribed_multiworker_agrees_with_serial() {
        // The worker-slot clamp keeps multi-worker paths dormant on
        // small machines; lift it so helpers, stealing, speculation and
        // single-flight claims all run even on one core. Any
        // interleaving must produce the serial analysis, and the
        // disjoint-support speculation filter must keep the parallel
        // call count at the sequential level.
        std::env::set_var("XRTA_OVERSUBSCRIBE", "1");
        let net = wide_bypass(6);
        let req = vec![Time::new(4); 6];
        let run = |threads| {
            approx2_required_times(
                &net,
                &UnitDelay,
                &req,
                Approx2Options {
                    threads,
                    ..Approx2Options::default()
                },
            )
        };
        let seq = run(1);
        let par = run(4);
        std::env::remove_var("XRTA_OVERSUBSCRIBE");
        assert!(
            seq.oracle_calls >= WARMUP_ORACLE_CALLS,
            "circuit too small to engage helpers ({} calls)",
            seq.oracle_calls
        );
        assert_eq!(seq.maximal, par.maximal);
        assert_eq!(seq.candidates, par.candidates);
        assert_eq!(seq.r_bottom, par.r_bottom);
        assert!(
            par.oracle_calls <= seq.oracle_calls + seq.oracle_calls / 10,
            "parallel oracle calls {} exceed sequential {} by more than 10%",
            par.oracle_calls,
            seq.oracle_calls
        );
    }

    #[test]
    fn trivial_circuit_never_spawns_helpers() {
        // The whole climb on this circuit needs far fewer oracle calls
        // than the warm-up threshold, so the search must run entirely
        // on the calling thread: no steals, no batched hand-offs.
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                threads: 4,
                ..Approx2Options::default()
            },
        );
        assert!(r.oracle_calls < WARMUP_ORACLE_CALLS);
        assert_eq!(r.steals, 0, "cold search must not engage the pool");
    }
}
