//! Approximate approach 2 (§4.3): lattice climbing with a functional
//! timing oracle.
//!
//! Candidate required times form the lattice `R = R₁ × … × R_n`; the
//! bottom `r⊥` is topological analysis. A candidate `r` is *safe* when a
//! full functional (false-path-aware) timing analysis under arrival
//! times `r` still meets every output's required time. Safety is
//! downward closed, so greedy coordinate raises find a maximal safe
//! point; backtracking enumerates all of them.

use std::time::{Duration, Instant};

use xrta_bdd::FxHashMap;
use xrta_chi::{EngineKind, FunctionalTiming};
use xrta_network::Network;
use xrta_timing::{required_times, DelayModel, Time};

use crate::plan::plan_leaves;

/// Options for the lattice-climbing analysis.
#[derive(Clone, Copy, Debug)]
pub struct Approx2Options {
    /// Which χ engine validates candidates (the paper uses the SAT
    /// engine for scalability).
    pub engine: EngineKind,
    /// Also try `∞` ("never arrives") as the top candidate per input.
    pub allow_never: bool,
    /// Stop after this many maximal points.
    pub max_solutions: usize,
    /// Stop after this many oracle invocations.
    pub max_oracle_calls: usize,
    /// Wall-clock budget (the paper's 12-hour cap, scaled down).
    pub time_budget: Option<Duration>,
    /// SAT-conflict budget per oracle query; inconclusive queries count
    /// as unsafe (sound: a candidate is only accepted when provably
    /// safe). `None` = unlimited.
    pub oracle_conflict_budget: Option<u64>,
    /// Unit-propagation budget per oracle query — a hard wall-clock
    /// bound on multiplier-class χ networks. Same conservative
    /// treatment as the conflict budget. `None` = unlimited.
    pub oracle_propagation_budget: Option<u64>,
    /// Candidate clustering stride (the paper's conclusion: "group
    /// [required times] into clusters of neighboring required times
    /// conservatively; controlling the number of clusters gives a
    /// trade-off between accuracy and CPU time"). A stride of `k` keeps
    /// every `k`-th candidate per input (always keeping the bottom and,
    /// when enabled, the ∞ top). 1 = no clustering.
    pub cluster_stride: usize,
}

impl Default for Approx2Options {
    fn default() -> Self {
        Approx2Options {
            engine: EngineKind::Sat,
            allow_never: true,
            max_solutions: 8,
            max_oracle_calls: 10_000,
            time_budget: None,
            oracle_conflict_budget: None,
            oracle_propagation_budget: None,
            cluster_stride: 1,
        }
    }
}

/// Result of the lattice-climbing analysis.
#[derive(Clone, Debug)]
pub struct Approx2Result {
    /// The topological bottom `r⊥` (per input, aligned with
    /// `net.inputs()`).
    pub r_bottom: Vec<Time>,
    /// Maximal safe points found (each dominates `r_bottom`).
    pub maximal: Vec<Vec<Time>>,
    /// Wall time until the first validated `r ≠ r⊥`, if any (the
    /// "CPU time first r ≠ r⊥" column of the paper's Table 2).
    pub first_nontrivial: Option<Duration>,
    /// Total wall time of the search ("CPU time r_max").
    pub total_time: Duration,
    /// Oracle invocations (cache misses only).
    pub oracle_calls: usize,
    /// False when a budget cap stopped the enumeration early; the
    /// `maximal` found so far are still valid safe points.
    pub completed: bool,
}

impl Approx2Result {
    /// Did the analysis find any required time looser than topological?
    pub fn has_nontrivial_requirement(&self) -> bool {
        self.maximal.iter().any(|r| r != &self.r_bottom)
    }

    /// The maximal points as [`RequiredTimeTuple`]s (uniform deadlines,
    /// since this analysis is value-independent) — the same type the
    /// exact and parametric analyses report, for uniform consumption.
    pub fn maximal_conditions(&self) -> Vec<crate::types::RequiredTimeTuple> {
        self.maximal
            .iter()
            .map(|r| crate::types::RequiredTimeTuple::uniform(r))
            .collect()
    }
}

struct Search<'n, D: DelayModel> {
    net: &'n Network,
    model: &'n D,
    output_required: &'n [Time],
    candidates: Vec<Vec<Time>>,
    options: Approx2Options,
    /// Whole-vector verdict cache.
    oracle_cache: FxHashMap<Vec<Time>, bool>,
    /// Per-output verdict cache keyed by the arrival projection onto the
    /// output's input cone — a raise of one input only re-verifies the
    /// outputs in its transitive fanout.
    out_cache: FxHashMap<(usize, Vec<Time>), bool>,
    /// Input positions in each output's cone.
    cones: Vec<Vec<usize>>,
    oracle_calls: usize,
    started: Instant,
    first_nontrivial: Option<Duration>,
    out_of_budget: bool,
}

impl<'n, D: DelayModel> Search<'n, D> {
    fn budget_exhausted(&self) -> bool {
        self.oracle_calls >= self.options.max_oracle_calls
            || self
                .options
                .time_budget
                .is_some_and(|b| self.started.elapsed() >= b)
    }

    fn is_safe(&mut self, r: &[Time]) -> Option<bool> {
        if let Some(&v) = self.oracle_cache.get(r) {
            return Some(v);
        }
        let mut safe = true;
        for (oi, &o) in self.net.outputs().iter().enumerate() {
            let t = self.output_required[oi];
            if t.is_inf() {
                continue;
            }
            let proj: Vec<Time> = self.cones[oi].iter().map(|&p| r[p]).collect();
            let ok = match self.out_cache.get(&(oi, proj.clone())) {
                Some(&v) => v,
                None => {
                    if self.budget_exhausted() {
                        self.out_of_budget = true;
                        return None;
                    }
                    self.oracle_calls += 1;
                    let ft = FunctionalTiming::new(
                        self.net,
                        self.model,
                        r.to_vec(),
                        self.options.engine,
                    )
                    .with_conflict_budget(self.options.oracle_conflict_budget)
                    .with_propagation_budget(self.options.oracle_propagation_budget);
                    let v = ft.stable_by(o, t);
                    self.out_cache.insert((oi, proj), v);
                    v
                }
            };
            if !ok {
                safe = false;
                break;
            }
        }
        self.oracle_cache.insert(r.to_vec(), safe);
        if safe && self.first_nontrivial.is_none() {
            // r⊥ itself doesn't count as non-trivial.
            let bottom: Vec<Time> = self.candidates.iter().map(|c| c[0]).collect();
            if r != bottom.as_slice() {
                self.first_nontrivial = Some(self.started.elapsed());
            }
        }
        Some(safe)
    }

    /// Raise coordinate `i` of `r` to its next candidate, if any.
    fn raised(&self, r: &[Time], i: usize) -> Option<Vec<Time>> {
        let cands = &self.candidates[i];
        let pos = cands.iter().position(|&c| c == r[i]).expect("on lattice");
        if pos + 1 < cands.len() {
            let mut next = r.to_vec();
            next[i] = cands[pos + 1];
            Some(next)
        } else {
            None
        }
    }

    /// Greedy ascent from `r` to one maximal safe point.
    fn climb(&mut self, r: Vec<Time>) -> Vec<Time> {
        self.climb_rotated(r, 0)
    }

    /// Bounded enumeration of maximal safe points (§4.3's backtracking
    /// refinement, capped): up to `max_solutions` greedy climbs, each
    /// visiting the coordinates in a different rotation so incomparable
    /// maxima are found when the raise order matters. Exhaustive DFS over
    /// the lattice is avoided — on wide circuits the number of
    /// intermediate safe points is combinatorial.
    fn enumerate(&mut self, bottom: Vec<Time>) -> Vec<Vec<Time>> {
        let n = bottom.len().max(1);
        let mut maximal: Vec<Vec<Time>> = Vec::new();
        for attempt in 0..self.options.max_solutions {
            if self.out_of_budget {
                break;
            }
            let start = (attempt * n) / self.options.max_solutions.max(1);
            let m = self.climb_rotated(bottom.clone(), start);
            if !maximal.contains(&m) {
                maximal.push(m);
            }
        }
        maximal
    }

    /// Greedy ascent visiting coordinates starting from index `start`.
    fn climb_rotated(&mut self, mut r: Vec<Time>, start: usize) -> Vec<Time> {
        let n = r.len();
        loop {
            let mut progressed = false;
            for k in 0..n {
                let i = (start + k) % n;
                while let Some(next) = self.raised(&r, i) {
                    match self.is_safe(&next) {
                        Some(true) => {
                            r = next;
                            progressed = true;
                        }
                        Some(false) | None => break,
                    }
                }
                if self.out_of_budget {
                    return r;
                }
            }
            if !progressed {
                return r;
            }
        }
    }
}

/// Runs the lattice-climbing analysis of §4.3.
///
/// The candidate set per input is the merged leaf-time list of the
/// planning pass (the times at which χ leaves are referenced), whose
/// minimum is the topological required time; `∞` is appended when
/// [`Approx2Options::allow_never`] is set.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx2_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: Approx2Options,
) -> Approx2Result {
    assert_eq!(output_required.len(), net.outputs().len());
    let started = Instant::now();
    let plan = plan_leaves(net, model, output_required, |_| true);
    let topo_net = required_times(net, model, output_required);
    let r_bottom: Vec<Time> = net
        .inputs()
        .iter()
        .map(|i| topo_net[i.index()])
        .collect();
    let candidates: Vec<Vec<Time>> = plan
        .per_input
        .iter()
        .zip(&r_bottom)
        .map(|(lt, &bot)| {
            let mut c = lt.merged();
            if c.is_empty() || c[0] != bot {
                // Inputs outside every cone have no planned times; their
                // bottom is ∞ already.
                c.insert(0, bot);
                c.dedup();
            }
            if options.cluster_stride > 1 && c.len() > 2 {
                // Conservative coarsening: keep the bottom plus every
                // stride-th candidate (dropping a candidate only removes
                // an intermediate rung — the search stays sound, merely
                // less precise).
                let stride = options.cluster_stride;
                let kept: Vec<Time> = c
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % stride == 0 || *i + 1 == c.len())
                    .map(|(_, &t)| t)
                    .collect();
                c = kept;
            }
            if options.allow_never && *c.last().expect("non-empty") != Time::INF {
                c.push(Time::INF);
            }
            c
        })
        .collect();

    // Input positions in each output's transitive fanin cone.
    let input_pos_of: FxHashMap<usize, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(pos, id)| (id.index(), pos))
        .collect();
    let cones: Vec<Vec<usize>> = net
        .outputs()
        .iter()
        .map(|&o| {
            net.transitive_fanin(&[o])
                .into_iter()
                .filter_map(|n| input_pos_of.get(&n.index()).copied())
                .collect()
        })
        .collect();

    let mut search = Search {
        net,
        model,
        output_required,
        candidates,
        options,
        oracle_cache: FxHashMap::default(),
        out_cache: FxHashMap::default(),
        cones,
        oracle_calls: 0,
        started,
        first_nontrivial: None,
        out_of_budget: false,
    };

    // The bottom is safe by construction (topological analysis is
    // conservative); seed the caches so a conflict budget cannot make
    // the search reject its own starting point.
    search.oracle_cache.insert(r_bottom.clone(), true);
    for (oi, cone) in search.cones.iter().enumerate() {
        let proj: Vec<Time> = cone.iter().map(|&p| r_bottom[p]).collect();
        search.out_cache.insert((oi, proj), true);
    }

    let maximal = if options.max_solutions <= 1 {
        vec![search.climb(r_bottom.clone())]
    } else {
        let mut m = search.enumerate(r_bottom.clone());
        if m.is_empty() {
            m.push(search.climb(r_bottom.clone()));
        }
        m
    };

    Approx2Result {
        r_bottom,
        maximal,
        first_nontrivial: search.first_nontrivial,
        total_time: started.elapsed(),
        oracle_calls: search.oracle_calls,
        completed: !search.out_of_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    /// The canonical two-MUX bypass false path (see `xrta-chi`): the
    /// slow input x can arrive later than topological analysis says.
    fn mux_false_path() -> Network {
        let mut net = Network::new("fp");
        let s = net.add_input("s").unwrap();
        let x = net.add_input("x").unwrap();
        let c = net.add_input("c").unwrap();
        let b1 = net.add_gate("b1", GateKind::Buf, &[x]).unwrap();
        let b2 = net.add_gate("b2", GateKind::Buf, &[b1]).unwrap();
        let m1 = net.add_gate("m1", GateKind::Mux, &[s, x, b2]).unwrap();
        let z = net.add_gate("z", GateKind::Mux, &[s, m1, c]).unwrap();
        net.mark_output(z);
        net
    }

    #[test]
    fn fig4_value_independent_search_is_trivial() {
        // The §4.3 implementation searches value-independent times; for
        // Figure 4 the looseness is value-dependent only, so the climb
        // stays at r⊥ — matching the paper's observation that approx 1
        // can beat approx 2 on such circuits.
        let net = fig4();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(2)],
            Approx2Options::default(),
        );
        assert_eq!(r.r_bottom, vec![Time::new(0), Time::new(0)]);
        assert!(!r.has_nontrivial_requirement());
        assert!(r.completed);
    }

    #[test]
    fn false_path_circuit_gives_loose_times() {
        let net = mux_false_path();
        let topo_req = Time::new(4);
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[topo_req],
            Approx2Options::default(),
        );
        // Topological: x must arrive by 4 − 4 = 0. The false path lets
        // it arrive later in every maximal condition.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        assert!(r.has_nontrivial_requirement());
        // Several incomparable maximal points may exist (e.g. raising s
        // instead of x); at least one must loosen x.
        assert!(
            r.maximal.iter().any(|m| m[x_pos] > Time::new(0)),
            "x loosened in some maximal point: {:?}",
            r.maximal
        );
        assert!(r.first_nontrivial.is_some());
    }

    #[test]
    fn maximal_points_are_safe_and_unraisable() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let opts = Approx2Options::default();
        let r = approx2_required_times(&net, &UnitDelay, &req, opts);
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req), "maximal point {m:?} must be safe");
        }
    }

    #[test]
    fn engines_agree() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let sat = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Sat,
                ..Approx2Options::default()
            },
        );
        let bdd = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                engine: EngineKind::Bdd,
                ..Approx2Options::default()
            },
        );
        let norm = |mut v: Vec<Vec<Time>>| {
            v.sort();
            v
        };
        assert_eq!(norm(sat.maximal), norm(bdd.maximal));
    }

    #[test]
    fn oracle_budget_respected() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_oracle_calls: 2,
                ..Approx2Options::default()
            },
        );
        assert!(r.oracle_calls <= 2);
        assert!(!r.completed);
    }

    #[test]
    fn single_solution_mode_climbs_greedily() {
        let net = mux_false_path();
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(4)],
            Approx2Options {
                max_solutions: 1,
                ..Approx2Options::default()
            },
        );
        assert_eq!(r.maximal.len(), 1);
        let m = &r.maximal[0];
        // Greedy result must dominate the bottom.
        assert!(m
            .iter()
            .zip(&r.r_bottom)
            .all(|(a, b)| a >= b));
    }

    #[test]
    fn clustering_is_sound_but_coarser() {
        let net = mux_false_path();
        let req = [Time::new(4)];
        let full = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
        let clustered = approx2_required_times(
            &net,
            &UnitDelay,
            &req,
            Approx2Options {
                cluster_stride: 2,
                ..Approx2Options::default()
            },
        );
        // Clustered results are still safe…
        for m in &clustered.maximal {
            let ft = FunctionalTiming::new(&net, &UnitDelay, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&req));
        }
        // …and never use more oracle calls than the full lattice needs
        // more rungs for.
        assert!(clustered.oracle_calls <= full.oracle_calls + 2);
    }

    #[test]
    fn table_delay_model_respected() {
        use xrta_timing::TableDelay;
        // Make the bypass buffers free: the "slow" branch stops being
        // slow and the topological bottom shifts accordingly.
        let net = mux_false_path();
        let mut model = TableDelay::with_default(&net, 1);
        for name in ["b1", "b2"] {
            model.set(net.find(name).unwrap(), 0);
        }
        let r = approx2_required_times(&net, &model, &[Time::new(2)], Approx2Options::default());
        // x's topological requirement: through m1 (delay 1) + z (1) with
        // free buffers → req(x) = 0.
        let x_pos = 1;
        assert_eq!(r.r_bottom[x_pos], Time::new(0));
        for m in &r.maximal {
            let ft = FunctionalTiming::new(&net, &model, m.clone(), EngineKind::Bdd);
            assert!(ft.meets(&[Time::new(2)]));
        }
    }

    #[test]
    fn never_candidate_found_for_unobserved_input() {
        // An input that no output depends on can arrive at ∞.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let bb = net.add_gate("bb", GateKind::Buf, &[b]).unwrap();
        let z = net.add_gate("z", GateKind::Buf, &[a]).unwrap();
        net.mark_output(z);
        let _ = bb;
        let r = approx2_required_times(
            &net,
            &UnitDelay,
            &[Time::new(1)],
            Approx2Options::default(),
        );
        let b_pos = 1;
        assert!(r.maximal.iter().all(|m| m[b_pos].is_inf()));
    }
}
