//! Human-readable rendering of analysis results (paper-style tables).

use std::fmt::Write as _;

use xrta_network::Network;
use xrta_timing::Time;

use crate::approx1::Approx1Analysis;
use crate::approx2::Approx2Result;
use crate::exact::ExactAnalysis;
use crate::flex::SubcircuitArrivals;
use crate::session::SessionReport;
use crate::types::RequiredTimeTuple;

/// Renders a set of latest required-time conditions as a table with one
/// row per condition and one column per primary input.
pub fn render_conditions(net: &Network, conditions: &[RequiredTimeTuple]) -> String {
    let names: Vec<&str> = net
        .inputs()
        .iter()
        .map(|&i| net.node(i).name.as_str())
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "condition | {}", names.join(" | "));
    for (k, cond) in conditions.iter().enumerate() {
        let cells: Vec<String> = cond.per_input.iter().map(|vt| vt.to_string()).collect();
        let _ = writeln!(out, "#{k:<8} | {}", cells.join(" | "));
    }
    out
}

/// Renders the folded arrival table of a §5.1 analysis like the
/// paper's Figure 6 table; unreachable vectors show `(∞,…)` (SDC).
pub fn render_folded_arrivals(res: &SubcircuitArrivals) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "U vector | maximal arrival tuples");
    for (u_vec, tuples) in &res.folded {
        let label: String = u_vec.iter().map(|&b| if b { '1' } else { '0' }).collect();
        if tuples.is_empty() {
            let infs = vec!["∞"; u_vec.len()].join(",");
            let _ = writeln!(out, "{label:<8} | {{({infs})}}   (SDC)");
        } else {
            let ts: Vec<String> = tuples
                .iter()
                .map(|t| {
                    let inner: Vec<String> = t.iter().map(|x| x.to_string()).collect();
                    format!("({})", inner.join(","))
                })
                .collect();
            let _ = writeln!(out, "{label:<8} | {{{}}}", ts.join(", "));
        }
    }
    out
}

/// Renders an [`Approx1Analysis`] like the paper's §4.2 discussion:
/// parameter count, prime count, and each prime's required-time reading.
pub fn render_approx1(net: &Network, analysis: &Approx1Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parametric analysis: {} parameters, {} prime(s), non-trivial: {}",
        analysis.param_vars.len(),
        analysis.primes.len(),
        analysis.has_nontrivial_requirement()
    );
    out.push_str(&render_conditions(net, &analysis.conditions));
    out
}

/// Renders an [`Approx2Result`] as a before/after table per input.
pub fn render_approx2(net: &Network, result: &Approx2Result) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lattice climb: {} maximal point(s), {} oracle call(s), \
         {} cache hit(s) ({:.1}% hit rate), {} thread(s), complete: {}",
        result.maximal.len(),
        result.oracle_calls,
        result.cache_hits,
        100.0 * result.cache_hit_rate(),
        result.threads_used,
        result.completed
    );
    let _ = writeln!(
        out,
        "oracle: {} steal(s), {} contended stripe(s), {} batch(es) \
         ({} batched probe(s)), {} speculative probe(s)",
        result.steals,
        result.shard_contention,
        result.batches,
        result.batched_probes,
        result.spec_probes
    );
    let _ = writeln!(out, "input | topological | maximal points");
    for (pos, &pi) in net.inputs().iter().enumerate() {
        let points: Vec<String> = result.maximal.iter().map(|m| m[pos].to_string()).collect();
        let _ = writeln!(
            out,
            "{:<5} | {:<11} | {}",
            net.node(pi).name,
            result.r_bottom[pos],
            points.join(", ")
        );
    }
    out
}

/// Renders a session's provenance: requested vs answering rung and the
/// per-rung resource spend of every attempt.
pub fn render_session_provenance(report: &SessionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "session: requested {}, answered {}{}",
        report.requested,
        report.verdict,
        if report.degraded() { " (degraded)" } else { "" }
    );
    for a in &report.attempts {
        let outcome = match a.error {
            None => "ok".to_string(),
            Some(e) => e.to_string(),
        };
        let _ = writeln!(
            out,
            "  rung {:<11} | {:>8.1?} | {}",
            a.rung.to_string(),
            a.wall,
            outcome
        );
    }
    out
}

/// Renders the exact latest relation for one input minterm like the
/// paper's §4.1 right-hand table.
pub fn render_exact_minterm(net: &Network, analysis: &mut ExactAnalysis, x: &[bool]) -> String {
    let mut out = String::new();
    let label: String = x.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let tuples = analysis.latest_tuples(x);
    let readings: Vec<String> = tuples
        .iter()
        .map(|t| {
            let cells: Vec<String> = t
                .per_input
                .iter()
                .enumerate()
                .map(|(i, vt)| {
                    let active: Time = if x[i] { vt.value1 } else { vt.value0 };
                    active.to_string()
                })
                .collect();
            format!("({})", cells.join(","))
        })
        .collect();
    let _ = writeln!(out, "x = {label}: {{{}}}", readings.join(", "));
    let _ = net;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx1::{approx1_required_times, Approx1Options};
    use crate::approx2::{approx2_required_times, Approx2Options};
    use crate::exact::{exact_required_times, ExactOptions};
    use xrta_circuits::fig4;
    use xrta_timing::UnitDelay;

    #[test]
    fn renders_are_nonempty_and_mention_inputs() {
        let net = fig4();
        let req = [Time::new(2)];
        let a1 = approx1_required_times(&net, &UnitDelay, &req, Approx1Options::default()).unwrap();
        let s = render_approx1(&net, &a1);
        assert!(s.contains("x1"));
        assert!(s.contains("prime"));

        let a2 = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
        let s = render_approx2(&net, &a2);
        assert!(s.contains("topological"));
        assert!(s.contains("x2"));

        let mut ex = exact_required_times(&net, &UnitDelay, &req, ExactOptions::default()).unwrap();
        let s = render_exact_minterm(&net, &mut ex, &[false, false]);
        assert!(s.contains("x = 00"));
        assert!(s.contains("∞"), "infinite deadlines rendered: {s}");
    }

    #[test]
    fn folded_arrivals_render_includes_sdc() {
        use crate::flex::{subcircuit_arrival_times, ArrivalFlexOptions};
        let (net, u) = xrta_circuits::fig6();
        let res = subcircuit_arrival_times(
            &net,
            &UnitDelay,
            &[Time::ZERO; 3],
            &u,
            ArrivalFlexOptions::default(),
        )
        .unwrap();
        let s = render_folded_arrivals(&res);
        assert!(s.contains("SDC"), "{s}");
        assert!(s.contains("(1,2)"), "{s}");
    }

    #[test]
    fn session_provenance_names_rungs_and_exhaustion() {
        use crate::governor::Budget;
        use crate::session::{run_with_fallback, SessionOptions, Verdict};
        let net = fig4();
        let opts = SessionOptions {
            budget: Budget::unlimited().with_node_limit(Some(8)),
            fallback: true,
            ..SessionOptions::default()
        };
        let r =
            run_with_fallback(&net, &UnitDelay, &[Time::new(2)], Verdict::Exact, &opts).unwrap();
        let s = render_session_provenance(&r);
        assert!(s.contains("requested exact"), "{s}");
        assert!(s.contains("degraded"), "{s}");
        assert!(s.contains("node budget"), "{s}");
    }

    #[test]
    fn approx2_conditions_are_uniform_tuples() {
        let net = fig4();
        let r =
            approx2_required_times(&net, &UnitDelay, &[Time::new(2)], Approx2Options::default());
        let conds = r.maximal_conditions();
        assert_eq!(conds.len(), r.maximal.len());
        for (c, m) in conds.iter().zip(&r.maximal) {
            for (vt, &t) in c.per_input.iter().zip(m) {
                assert_eq!(vt.value1, t);
                assert_eq!(vt.value0, t);
            }
        }
    }
}
