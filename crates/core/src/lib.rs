//! # xrta-core — exact required time analysis via false path detection
//!
//! Rust reproduction of Kukimoto & Brayton, *Exact Required Time
//! Analysis via False Path Detection* (UCB/ERL M97/44, 1997).
//!
//! Given a combinational network, per-gate max delays (XBD0 model) and
//! required times at the primary outputs, this crate computes required
//! times at the primary inputs (or at arbitrary internal cuts) that
//! account for **false paths** — deadlines that are provably looser than
//! the classical topological backward sweep, generalized from constants
//! to *relations* where a signal's deadline depends on the values of the
//! other signals.
//!
//! Three algorithms from §4 of the paper:
//!
//! * [`exact_required_times`] — the exact Boolean relation over unknown
//!   leaf χ variables, with minimal-element extraction for the latest
//!   conditions (§4.1);
//! * [`approx1_required_times`] — the parametric α/β encoding whose
//!   monotone `F(α,β)`'s primes are the latest input-uniform conditions
//!   (§4.2);
//! * [`approx2_required_times`] — lattice climbing over candidate
//!   deadline vectors validated by full functional timing analysis
//!   (§4.3, the scalable SAT-backed scheme).
//!
//! §5's subcircuit flexibility is in [`subcircuit_arrival_times`]
//! (value-dependent arrivals at subcircuit inputs, Figure 6),
//! [`subcircuit_required_times`] (deadlines at subcircuit outputs via
//! the cut network `N_FO`) and [`coupled_flexibility`] (§5.3). The true
//! false-path-aware slack of §3 is [`true_slack`].
//!
//! ## Example: the paper's Figure 4
//!
//! ```
//! use xrta_network::{Network, GateKind};
//! use xrta_timing::{Time, UnitDelay};
//! use xrta_core::{approx1_required_times, Approx1Options};
//!
//! // z = AND(buf(x1), x2, buf(x2)), unit delays, req(z) = 2.
//! let mut net = Network::new("fig4");
//! let x1 = net.add_input("x1")?;
//! let x2 = net.add_input("x2")?;
//! let y1 = net.add_gate("y1", GateKind::Buf, &[x1])?;
//! let y2 = net.add_gate("y2", GateKind::Buf, &[x2])?;
//! let z = net.add_gate("z", GateKind::And, &[y1, x2, y2])?;
//! net.mark_output(z);
//!
//! let a = approx1_required_times(&net, &UnitDelay, &[Time::new(2)],
//!                                Approx1Options::default()).unwrap();
//! // Topological analysis demands both inputs at time 0; the paper's
//! // analysis relaxes x2's settle-to-0 deadline to time 1.
//! assert!(a.has_nontrivial_requirement());
//! let c = &a.conditions[0];
//! assert_eq!(c.per_input[1].value0, Time::new(1));
//! # Ok::<(), xrta_network::NetworkError>(())
//! ```

mod approx1;
mod approx2;
pub mod cone;
pub mod dominance;
mod exact;
mod flex;
pub mod governor;
mod leaves;
mod macro_model;
mod oracle_pool;
mod plan;
pub mod report;
pub mod session;
mod slack;
pub mod stripes;
mod types;

pub use approx1::{
    approx1_required_times, approx1_required_times_governed, Approx1Analysis, Approx1Options,
};
pub use approx2::{
    approx2_required_times, approx2_required_times_governed, Approx2Options, Approx2Result,
};
pub use cone::{analyze_cone, slice_cones, splice, ConeSlice, ConeVerdict, SpliceReport};
pub use dominance::{CacheStrategy, DominanceCache};
pub use exact::{exact_required_times, exact_required_times_governed, ExactAnalysis, ExactOptions};
pub use flex::{
    coupled_flexibility, subcircuit_arrival_times, subcircuit_required_times, ArrivalClass,
    ArrivalFlexOptions, CoupledClass, SubcircuitArrivals, SubcircuitRequired,
};
pub use governor::{AnalysisError, Budget};
// Deterministic fault injection (named sites, seeded schedules) lives
// in the leaf crate `xrta-robust` so the BDD/SAT layers can host
// sites too; re-exported here as `core::failpoint` for discovery.
pub use leaves::{LeafMode, LeafVarKey, ParamVarKey, PlannedLeaves};
pub use macro_model::{macro_model, MacroModel};
pub use plan::{plan_leaves, LeafPlan, LeafTimes};
pub use session::{
    run_with_fallback, AnswerDigest, RungAttempt, SessionAnswer, SessionOptions, SessionReport,
    Verdict,
};
pub use slack::{true_slack, TrueSlack};
pub use stripes::{support_fingerprint, Claim, StripedVerdictCache};
pub use types::{RequiredTimeTuple, ValueTimes};
pub use xrta_robust::failpoint;
