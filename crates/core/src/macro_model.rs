//! False-path-aware timing macro-models (the paper's follow-up work:
//! Kukimoto & Brayton, *Hierarchical timing analysis under the XBD0
//! model*, IWLS 1997 — reference [7] of the paper).
//!
//! A **macro-model** abstracts a combinational block as a matrix of
//! *true* pin-to-pin delays: entry `(i, o)` is the latest time output
//! `o` can remain unsettled after input `i` arrives, maximized over the
//! other inputs' values but accounting for false paths — so a block with
//! an unsensitizable long path advertises the shorter, achievable delay.
//! The abstraction is safe for any surrounding environment under XBD0
//! (delays compose superadditively), yet hides the block's internals.

use xrta_chi::{EngineKind, FunctionalTiming};
use xrta_network::Network;
use xrta_timing::{arrival_times, DelayModel, Time};

/// A false-path-aware pin-to-pin delay abstraction of a network.
#[derive(Clone, Debug)]
pub struct MacroModel {
    /// Input pin names, aligned with the rows of `delay`.
    pub input_names: Vec<String>,
    /// Output pin names, aligned with the columns of `delay`.
    pub output_names: Vec<String>,
    /// `delay[i][o]`: true sensitizable delay from input `i` to output
    /// `o`; `None` when `o` does not depend on `i` at all.
    pub delay: Vec<Vec<Option<Time>>>,
    /// The corresponding *topological* pin-to-pin delays (upper bounds),
    /// for comparison.
    pub topological: Vec<Vec<Option<Time>>>,
}

impl MacroModel {
    /// Arrival times at the outputs for given input arrival times, per
    /// the abstraction: `arr(o) = max_i arr(i) + delay(i, o)`.
    ///
    /// # Panics
    ///
    /// Panics if `input_arrivals.len()` mismatches the pin count.
    pub fn output_arrivals(&self, input_arrivals: &[Time]) -> Vec<Time> {
        assert_eq!(input_arrivals.len(), self.input_names.len());
        (0..self.output_names.len())
            .map(|o| {
                self.delay
                    .iter()
                    .zip(input_arrivals)
                    .filter_map(|(row, &a)| row[o].map(|d| a + d.ticks()))
                    .max()
                    .unwrap_or(Time::NEG_INF)
            })
            .collect()
    }

    /// Number of `(i, o)` pairs whose true delay beats the topological
    /// bound — a quick false-path-content metric.
    pub fn tightened_pairs(&self) -> usize {
        let mut n = 0;
        for (row_t, row_d) in self.topological.iter().zip(&self.delay) {
            for (t, d) in row_t.iter().zip(row_d) {
                if let (Some(t), Some(d)) = (t, d) {
                    if d < t {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Computes the macro-model of a network.
///
/// The true pin-to-pin delay from input `i` is obtained by the paper's
/// χ machinery: set `arr(i) = 0` and every other arrival to `−∞`
/// ("already stable"), then take the true arrival time at each output —
/// exactly the sensitizable-delay semantics of [7].
///
/// # Panics
///
/// Panics if the network has no inputs or outputs.
pub fn macro_model<D: DelayModel>(net: &Network, model: &D, engine: EngineKind) -> MacroModel {
    assert!(!net.inputs().is_empty() && !net.outputs().is_empty());
    let n_in = net.inputs().len();
    let n_out = net.outputs().len();
    let input_names: Vec<String> = net
        .inputs()
        .iter()
        .map(|&i| net.node(i).name.clone())
        .collect();
    let output_names: Vec<String> = net
        .outputs()
        .iter()
        .map(|&o| net.node(o).name.clone())
        .collect();

    // Dependency mask from the structural cones.
    let mut depends = vec![vec![false; n_out]; n_in];
    for (oi, &o) in net.outputs().iter().enumerate() {
        let cone = net.transitive_fanin(&[o]);
        for (ii, &i) in net.inputs().iter().enumerate() {
            if cone.contains(&i) {
                depends[ii][oi] = true;
            }
        }
    }

    let mut delay = vec![vec![None; n_out]; n_in];
    let mut topological = vec![vec![None; n_out]; n_in];
    for ii in 0..n_in {
        let mut arr = vec![Time::NEG_INF; n_in];
        arr[ii] = Time::ZERO;
        let topo = arrival_times(net, model, &arr);
        let ft = FunctionalTiming::new(net, model, arr.clone(), engine);
        for (oi, &o) in net.outputs().iter().enumerate() {
            if !depends[ii][oi] {
                continue;
            }
            topological[ii][oi] = Some(topo[o.index()]);
            delay[ii][oi] = Some(ft.true_arrival(o));
        }
    }

    MacroModel {
        input_names,
        output_names,
        delay,
        topological,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    #[test]
    fn chain_delays_match_topology() {
        let mut net = Network::new("chain");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_gate("g", GateKind::And, &[a, b]).unwrap();
        let h = net.add_gate("h", GateKind::Buf, &[g]).unwrap();
        net.mark_output(h);
        let m = macro_model(&net, &UnitDelay, EngineKind::Bdd);
        assert_eq!(m.delay[0][0], Some(Time::new(2)));
        assert_eq!(m.delay[1][0], Some(Time::new(2)));
        assert_eq!(m.tightened_pairs(), 0);
    }

    #[test]
    fn independent_pins_have_no_entry() {
        let mut net = Network::new("split");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let x = net.add_gate("x", GateKind::Not, &[a]).unwrap();
        let y = net.add_gate("y", GateKind::Not, &[b]).unwrap();
        net.mark_output(x);
        net.mark_output(y);
        let m = macro_model(&net, &UnitDelay, EngineKind::Bdd);
        assert_eq!(m.delay[0][1], None, "a does not reach y");
        assert_eq!(m.delay[1][0], None, "b does not reach x");
        assert_eq!(m.delay[0][0], Some(Time::new(1)));
    }

    #[test]
    fn false_path_tightens_macro_delay() {
        // The two-MUX bypass: x's topological path to z is length 4, but
        // the true x→z delay is shorter.
        let net = xrta_circuits::two_mux_bypass();
        let m = macro_model(&net, &UnitDelay, EngineKind::Bdd);
        let xi = m.input_names.iter().position(|n| n == "x").unwrap();
        let (t, d) = (m.topological[xi][0].unwrap(), m.delay[xi][0].unwrap());
        assert!(d < t, "true {d} vs topological {t}");
        assert!(m.tightened_pairs() >= 1);
    }

    #[test]
    fn output_arrivals_compose() {
        let net = xrta_circuits::two_mux_bypass();
        let m = macro_model(&net, &UnitDelay, EngineKind::Bdd);
        let arr = m.output_arrivals(&[Time::ZERO, Time::new(3), Time::ZERO]);
        assert_eq!(arr.len(), 1);
        // The abstraction must upper-bound the monolithic true arrival.
        let ft = FunctionalTiming::new(
            &net,
            &UnitDelay,
            vec![Time::ZERO, Time::new(3), Time::ZERO],
            EngineKind::Bdd,
        );
        let exact = ft.true_arrival(net.outputs()[0]);
        assert!(arr[0] >= exact, "macro {} < exact {}", arr[0], exact);
    }

    #[test]
    fn engines_agree_on_macro_model() {
        let net = xrta_circuits::two_mux_bypass();
        let a = macro_model(&net, &UnitDelay, EngineKind::Bdd);
        let b = macro_model(&net, &UnitDelay, EngineKind::Sat);
        assert_eq!(a.delay, b.delay);
    }
}
