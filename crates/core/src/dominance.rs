//! Dominance (monotone-lattice) verdict cache for the §4.3 safety
//! oracle.
//!
//! Safety of a required-time vector is monotone *decreasing* in the
//! pointwise order: loosening any coordinate can only turn a safe
//! vector unsafe, never the reverse. Two consequences drive this cache:
//!
//! - `r ≤ s` pointwise and `s` known safe ⇒ `r` safe;
//! - `r ≥ u` pointwise and `u` known unsafe ⇒ `r` unsafe.
//!
//! The cache therefore stores two antichains — the maximal known-safe
//! points and the minimal known-unsafe points — and answers any
//! dominated/dominating query without touching a χ engine. Incomparable
//! queries miss. Compare with an exact-key map, which only ever answers
//! the *identical* vector: on rotated lattice climbs, where restarts
//! re-traverse the region below an already-discovered maximal point,
//! dominance converts nearly the whole re-climb into cache hits.

use xrta_timing::Time;

/// Which verdict cache backs the §4.3 oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStrategy {
    /// Exact-key maps: a cached verdict answers only the identical
    /// vector (the original behaviour; kept as a measurable baseline).
    Exact,
    /// Dominance frontiers: a verdict answers every vector it dominates
    /// (safe) or is dominated by (unsafe), plus frontier-guided ladder
    /// jumps in the climb.
    Dominance,
}

/// Soft cap per frontier; beyond it the oldest entries are dropped.
/// Dropping is always sound — a lost entry is just a future cache miss
/// — and keeps the linear frontier scans bounded.
const MAX_FRONTIER: usize = 1024;

/// A two-antichain verdict cache over `Vec<Time>` points ordered
/// pointwise (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct DominanceCache {
    /// Maximal known-safe points (an antichain).
    safe: Vec<Vec<Time>>,
    /// Minimal known-unsafe points (an antichain).
    unsafe_: Vec<Vec<Time>>,
    hits: usize,
    misses: usize,
}

fn le(a: &[Time], b: &[Time]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

impl DominanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Answers `r` by dominance, or `None` when `r` is incomparable to
    /// every stored point. Updates hit/miss statistics.
    pub fn query(&mut self, r: &[Time]) -> Option<bool> {
        let verdict = self.peek(r);
        match verdict {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        verdict
    }

    /// Like [`DominanceCache::query`] without touching the statistics.
    pub fn peek(&self, r: &[Time]) -> Option<bool> {
        if self.safe.iter().any(|s| le(r, s)) {
            return Some(true);
        }
        if self.unsafe_.iter().any(|u| le(u, r)) {
            return Some(false);
        }
        None
    }

    /// Records an oracle verdict, keeping both frontiers antichains:
    /// a new safe point evicts safe points it dominates; a new unsafe
    /// point evicts unsafe points dominating it. Points already implied
    /// by the frontier are not stored.
    pub fn insert(&mut self, r: &[Time], safe: bool) {
        if safe {
            if self.safe.iter().any(|s| le(r, s)) {
                return;
            }
            self.safe.retain(|s| !le(s, r));
            if self.safe.len() >= MAX_FRONTIER {
                self.safe.remove(0);
            }
            self.safe.push(r.to_vec());
        } else {
            if self.unsafe_.iter().any(|u| le(u, r)) {
                return;
            }
            self.unsafe_.retain(|u| !le(r, u));
            if self.unsafe_.len() >= MAX_FRONTIER {
                self.unsafe_.remove(0);
            }
            self.unsafe_.push(r.to_vec());
        }
    }

    /// Queries answered by dominance.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Queries that fell through to the oracle.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Stored frontier sizes `(safe, unsafe)`.
    pub fn frontier_sizes(&self) -> (usize, usize) {
        (self.safe.len(), self.unsafe_.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[i64]) -> Vec<Time> {
        v.iter().map(|&x| Time::new(x)).collect()
    }

    #[test]
    fn dominated_by_safe_point_answers_without_oracle() {
        let mut c = DominanceCache::new();
        c.insert(&t(&[3, 5, 2]), true);
        // The point itself, and anything pointwise below it.
        assert_eq!(c.query(&t(&[3, 5, 2])), Some(true));
        assert_eq!(c.query(&t(&[0, 0, 0])), Some(true));
        assert_eq!(c.query(&t(&[3, 4, 2])), Some(true));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn dominating_an_unsafe_point_answers_without_oracle() {
        let mut c = DominanceCache::new();
        c.insert(&t(&[2, 2]), false);
        assert_eq!(c.query(&t(&[2, 2])), Some(false));
        assert_eq!(c.query(&t(&[5, 2])), Some(false));
        assert_eq!(c.query(&t(&[2, 9])), Some(false));
        assert_eq!(c.hits(), 3);
    }

    #[test]
    fn incomparable_points_are_never_answered() {
        let mut c = DominanceCache::new();
        c.insert(&t(&[3, 0]), true);
        c.insert(&t(&[0, 4]), false);
        // Above the safe point in one coordinate, below the unsafe point
        // in the other: incomparable to both ⇒ must go to the oracle.
        assert_eq!(c.query(&t(&[4, 0])), None);
        assert_eq!(c.query(&t(&[1, 1])), None);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn infinity_participates_in_the_order() {
        let mut c = DominanceCache::new();
        c.insert(&t(&[1]).iter().map(|_| Time::INF).collect::<Vec<_>>(), true);
        assert_eq!(c.query(&t(&[1_000_000])), Some(true));
    }

    #[test]
    fn frontiers_stay_antichains() {
        let mut c = DominanceCache::new();
        c.insert(&t(&[1, 1]), true);
        c.insert(&t(&[2, 2]), true); // dominates the first → evicts it
        assert_eq!(c.frontier_sizes().0, 1);
        c.insert(&t(&[1, 3]), true); // incomparable → kept
        assert_eq!(c.frontier_sizes().0, 2);
        c.insert(&t(&[0, 0]), true); // implied → not stored
        assert_eq!(c.frontier_sizes().0, 2);

        c.insert(&t(&[9, 9]), false);
        c.insert(&t(&[8, 8]), false); // dominated by (9,9)? no: (8,8) ≤ (9,9) evicts it
        assert_eq!(c.frontier_sizes().1, 1);
        c.insert(&t(&[10, 10]), false); // implied → not stored
        assert_eq!(c.frontier_sizes().1, 1);
    }

    #[test]
    fn conflicting_reinsert_prefers_first_verdict_region() {
        // Not a supported state (the oracle is deterministic), but the
        // cache must at least not panic and keep answering.
        let mut c = DominanceCache::new();
        c.insert(&t(&[1, 1]), true);
        c.insert(&t(&[1, 1]), false);
        assert!(c.peek(&t(&[1, 1])).is_some());
    }
}
