//! Cone-granular incremental analysis (§5 N_FI machinery).
//!
//! A production timing service sees streams of near-identical netlists
//! — one gate resized, one wire rerouted. Whole-request caching treats
//! every delta as a full recompute; this module gives the unit of reuse
//! the paper's §5 subcircuit machinery suggests: the **fanin cone** of
//! each primary output.
//!
//! [`slice_cones`] cuts a network into one [`ConeSlice`] per output.
//! Each slice carries a *canonical* rebuild of its cone — nodes
//! renumbered by a deterministic post-order DFS that follows fanins in
//! declaration order — plus a textual descriptor over that canonical
//! form: per-node truth-table bits, fanin indices, delay ticks, and the
//! output's required time. Names and global input positions never enter
//! the descriptor, so the fingerprint (FNV-1a 128 of the descriptor) is
//! stable under gate renaming and primary-input reordering, while any
//! cone-local change — structure, delay, or deadline — changes it.
//!
//! Because the canonical cone is itself a [`Network`], a cached verdict
//! is a pure function of the fingerprint: [`analyze_cone`] runs the
//! governed session ladder on the canonical cone, so two structurally
//! identical cones (even in *different* netlists, or two isomorphic
//! outputs of the same netlist) share one cached answer. [`splice`]
//! folds per-cone verdicts back into a whole-netlist report, lifting
//! each cone-local witness point onto the full input list over the
//! classical topological baseline.
//!
//! Soundness of the splice: each cone is analysed against its own
//! output's deadline by the same sound ladder the whole-net path uses,
//! and inputs outside a cone cannot affect that output at all, so the
//! topological baseline reported there is conservative. A delta request
//! therefore composes to exactly what a cold cone-granular run
//! produces — byte for byte — which is what `crates/verify`'s
//! edit-sequence differential fuzzer checks.

use std::collections::HashMap;

use xrta_network::{Network, NodeFunc, NodeId, TruthTable};
use xrta_timing::{required_times, tokens, DelayModel, TableDelay, Time};

use crate::governor::AnalysisError;
use crate::session::{run_with_fallback, SessionOptions, Verdict};

/// One output's fanin cone in canonical form.
#[derive(Clone, Debug)]
pub struct ConeSlice {
    /// Index of the output this cone drives (into `net.outputs()`).
    pub output: usize,
    /// FNV-1a 128 over [`ConeSlice::descriptor`].
    pub fingerprint: u128,
    /// Canonical textual form: structure + delays + required time.
    /// Two cones with equal descriptors have identical analyses.
    pub descriptor: String,
    /// The canonical cone network: one output, nodes named by
    /// canonical index, built in post-order DFS order.
    pub net: Network,
    /// Max delay ticks per canonical node (index-aligned; 0 for PIs).
    pub ticks: Vec<i64>,
    /// For each canonical input position, the global input index it
    /// came from (into the original `net.inputs()`).
    pub inputs: Vec<usize>,
    /// Required time at this cone's output.
    pub req: Time,
}

impl ConeSlice {
    /// Estimated heap bytes this slice holds: the canonical descriptor
    /// string plus the per-node and per-input payloads. Used by serve's
    /// delta path to charge sliced cones on the process meter's `Cone`
    /// account while they are alive.
    pub fn footprint(&self) -> u64 {
        // Per canonical node: the `Network` node record (name string,
        // kind, fanin list) is ~96 bytes for typical gate arities, plus
        // the 8-byte tick entry.
        const PER_NODE: usize = 104;
        (self.descriptor.capacity()
            + self.net.node_count() * PER_NODE
            + self.inputs.len() * std::mem::size_of::<usize>()) as u64
    }
}

/// The cached essence of one cone's governed analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConeVerdict {
    /// Rung that answered for this cone.
    pub verdict: Verdict,
    /// Whether the cone beats its topological requirement anywhere.
    pub nontrivial: bool,
    /// Witness points over the cone's canonical inputs.
    pub points: Vec<Vec<Time>>,
    /// Budget-exhaustion reason behind a degraded verdict, empty
    /// otherwise.
    pub degraded_reason: String,
}

/// A whole-netlist report composed from per-cone verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpliceReport {
    /// Rung the caller asked for.
    pub requested: Verdict,
    /// Most degraded rung any cone answered at.
    pub verdict: Verdict,
    /// Whether any cone beats its topological requirement.
    pub nontrivial: bool,
    /// One row per witness point, full input width: the classical
    /// topological requirement overlaid with the cone's values at the
    /// cone's own input positions. Cones whose rung carries no points
    /// contribute their plain topological row.
    pub points: Vec<Vec<Time>>,
    /// First (by output order) cone's degradation reason, if any.
    pub degraded_reason: String,
}

impl SpliceReport {
    /// Deterministic rendering, for differential byte comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "splice: requested={} verdict={} nontrivial={} reason={}\n",
            self.requested, self.verdict, self.nontrivial, self.degraded_reason
        );
        for p in &self.points {
            out.push_str("point: ");
            out.push_str(&tokens::encode_times(p));
            out.push('\n');
        }
        out
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Truth-table bits as hex nibbles, minterm 0 in the lowest bit.
fn table_hex(t: &TruthTable) -> String {
    let minterms = 1usize << t.var_count();
    let mut out = String::new();
    let mut nibble = 0u8;
    for m in 0..minterms {
        if t.bit(m) {
            nibble |= 1 << (m % 4);
        }
        if m % 4 == 3 {
            out.push(char::from_digit(nibble as u32, 16).unwrap());
            nibble = 0;
        }
    }
    if !minterms.is_multiple_of(4) {
        out.push(char::from_digit(nibble as u32, 16).unwrap());
    }
    out
}

/// Cuts `net` into one canonical [`ConeSlice`] per primary output.
///
/// # Panics
///
/// Panics if `req.len() != net.outputs().len()`.
pub fn slice_cones<D: DelayModel>(net: &Network, model: &D, req: &[Time]) -> Vec<ConeSlice> {
    assert_eq!(req.len(), net.outputs().len(), "required-time width");
    let input_pos: HashMap<NodeId, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    net.outputs()
        .iter()
        .enumerate()
        .map(|(k, &root)| slice_one(net, model, &input_pos, k, root, req[k]))
        .collect()
}

fn slice_one<D: DelayModel>(
    net: &Network,
    model: &D,
    input_pos: &HashMap<NodeId, usize>,
    output: usize,
    root: NodeId,
    req: Time,
) -> ConeSlice {
    // Iterative post-order DFS, fanins visited in declaration order:
    // children always precede parents, so the canonical order is
    // topological and independent of names and global input positions.
    let mut order: Vec<NodeId> = Vec::new();
    let mut canon: HashMap<NodeId, usize> = HashMap::new();
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(&mut (id, ref mut next)) = stack.last_mut() {
        if canon.contains_key(&id) {
            stack.pop();
            continue;
        }
        let fanins = &net.node(id).fanins;
        if *next < fanins.len() {
            let f = fanins[*next];
            *next += 1;
            if !canon.contains_key(&f) {
                stack.push((f, 0));
            }
        } else {
            canon.insert(id, order.len());
            order.push(id);
            stack.pop();
        }
    }

    let mut cone = Network::new("cone");
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut ticks = Vec::with_capacity(order.len());
    let mut inputs = Vec::new();
    let mut descriptor = format!("cone v1\nreq {}\n", tokens::encode_times(&[req]));
    for (idx, &id) in order.iter().enumerate() {
        let n = net.node(id);
        let new = match &n.func {
            NodeFunc::Input => {
                descriptor.push_str("i\n");
                ticks.push(0);
                inputs.push(input_pos[&id]);
                cone.add_input(format!("c{idx}"))
                    .expect("fresh canonical name")
            }
            NodeFunc::Gate { table, .. } => {
                let t = model.delay(net, id);
                descriptor.push_str(&format!(
                    "g {} {} {}",
                    table.var_count(),
                    table_hex(table),
                    t
                ));
                let fanins: Vec<NodeId> = n
                    .fanins
                    .iter()
                    .map(|f| {
                        descriptor.push_str(&format!(" {}", canon[f]));
                        map[f]
                    })
                    .collect();
                descriptor.push('\n');
                ticks.push(t);
                cone.add_table(format!("c{idx}"), table.clone(), &fanins)
                    .expect("canonical rebuild preserves validity")
            }
        };
        map.insert(id, new);
    }
    cone.mark_output(map[&root]);
    let fingerprint = fnv128(descriptor.as_bytes());
    ConeSlice {
        output,
        fingerprint,
        descriptor,
        net: cone,
        ticks,
        inputs,
        req,
    }
}

/// Runs the governed session ladder on one canonical cone.
///
/// The answer depends only on the slice's descriptor (and the budget in
/// `options`), which is what makes cone-level caching sound: equal
/// fingerprints ⇒ equal canonical cones ⇒ equal verdicts.
pub fn analyze_cone(
    slice: &ConeSlice,
    requested: Verdict,
    options: &SessionOptions,
) -> Result<ConeVerdict, AnalysisError> {
    let mut model = TableDelay::with_default(&slice.net, 1);
    for (idx, &t) in slice.ticks.iter().enumerate() {
        model.set(NodeId::from_index(idx), t);
    }
    let mut report = run_with_fallback(&slice.net, &model, &[slice.req], requested, options)?;
    let digest = report.digest();
    Ok(ConeVerdict {
        verdict: report.verdict,
        nontrivial: digest.nontrivial,
        points: digest.points,
        degraded_reason: report
            .exhaustion_reason()
            .map(|e| e.to_string())
            .unwrap_or_default(),
    })
}

/// Composes per-cone verdicts into one whole-netlist report.
///
/// `slices` and `verdicts` must be index-aligned (one pair per output,
/// as produced by [`slice_cones`] + [`analyze_cone`]).
pub fn splice<D: DelayModel>(
    net: &Network,
    model: &D,
    req: &[Time],
    requested: Verdict,
    slices: &[ConeSlice],
    verdicts: &[ConeVerdict],
) -> SpliceReport {
    assert_eq!(slices.len(), verdicts.len(), "one verdict per cone");
    let all_req = required_times(net, model, req);
    let r_bottom: Vec<Time> = net.inputs().iter().map(|i| all_req[i.index()]).collect();
    let mut points = Vec::new();
    let mut verdict = requested;
    let mut nontrivial = false;
    let mut degraded_reason = String::new();
    for (slice, v) in slices.iter().zip(verdicts) {
        verdict = verdict.max(v.verdict);
        nontrivial |= v.nontrivial;
        if degraded_reason.is_empty() && !v.degraded_reason.is_empty() {
            degraded_reason = v.degraded_reason.clone();
        }
        if v.points.is_empty() {
            points.push(r_bottom.clone());
            continue;
        }
        for p in &v.points {
            let mut row = r_bottom.clone();
            for (ci, &gi) in slice.inputs.iter().enumerate() {
                row[gi] = p[ci];
            }
            points.push(row);
        }
    }
    SpliceReport {
        requested,
        verdict,
        nontrivial,
        points,
        degraded_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::{c17, fig4, iscas_rows};
    use xrta_network::GateKind;
    use xrta_timing::{topological_delays, UnitDelay};

    use crate::approx2::{approx2_required_times, Approx2Options};

    /// Rebuilds `net` with the primary inputs declared in reverse order
    /// and every node renamed — structure, outputs and delays intact.
    fn permute_and_rename(net: &Network) -> Network {
        let mut out = Network::new(net.name().to_string());
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        for (k, &pi) in net.inputs().iter().rev().enumerate() {
            map.insert(pi, out.add_input(format!("p{k}")).unwrap());
        }
        for id in net.node_ids() {
            let n = net.node(id);
            if let NodeFunc::Gate { table, .. } = &n.func {
                let fanins: Vec<NodeId> = n.fanins.iter().map(|f| map[f]).collect();
                map.insert(
                    id,
                    out.add_table(format!("r{}", id.index()), table.clone(), &fanins)
                        .unwrap(),
                );
            }
        }
        for &o in net.outputs() {
            out.mark_output(map[&o]);
        }
        out
    }

    fn fingerprints(net: &Network) -> Vec<u128> {
        let req = topological_delays(net, &UnitDelay);
        slice_cones(net, &UnitDelay, &req)
            .iter()
            .map(|s| s.fingerprint)
            .collect()
    }

    #[test]
    fn stable_under_pi_permutation_and_gate_renaming() {
        for net in [c17(), fig4()] {
            let twisted = permute_and_rename(&net);
            assert_eq!(fingerprints(&net), fingerprints(&twisted), "{}", net.name());
        }
    }

    #[test]
    fn delay_scaling_changes_every_gate_cone() {
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        let unit = slice_cones(&net, &UnitDelay, &req);
        let double = TableDelay::with_default(&net, 2);
        let scaled = slice_cones(&net, &double, &req);
        for (a, b) in unit.iter().zip(&scaled) {
            assert_ne!(a.fingerprint, b.fingerprint, "output {}", a.output);
        }
    }

    #[test]
    fn required_time_change_changes_the_fingerprint() {
        let net = fig4();
        let a = slice_cones(&net, &UnitDelay, &[Time::new(2)]);
        let b = slice_cones(&net, &UnitDelay, &[Time::new(3)]);
        assert_ne!(a[0].fingerprint, b[0].fingerprint);
    }

    #[test]
    fn footprint_tracks_cone_size() {
        let small = slice_cones(&fig4(), &UnitDelay, &[Time::new(2)]);
        let c17 = c17();
        let req = vec![Time::new(10); c17.outputs().len()];
        let big = slice_cones(&c17, &UnitDelay, &req);
        for s in small.iter().chain(&big) {
            assert!(s.footprint() > 0);
        }
        // A c17 output cone strictly contains more nodes than the fig4
        // cone, so its estimate must be larger.
        assert!(big[0].footprint() > small[0].footprint());
    }

    #[test]
    fn cone_local_change_dirties_only_its_cones() {
        // c17 has two outputs; g10 feeds only output 22's cone.
        let net = c17();
        let mut edited = Network::new("c17");
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        let mut first_gate_swapped = false;
        for id in net.node_ids() {
            let n = net.node(id);
            let new = match &n.func {
                NodeFunc::Input => edited.add_input(n.name.clone()).unwrap(),
                NodeFunc::Gate { table, .. } => {
                    let fanins: Vec<NodeId> = n.fanins.iter().map(|f| map[f]).collect();
                    if !first_gate_swapped {
                        first_gate_swapped = true;
                        edited
                            .add_gate(n.name.clone(), GateKind::And, &fanins)
                            .unwrap()
                    } else {
                        edited
                            .add_table(n.name.clone(), table.clone(), &fanins)
                            .unwrap()
                    }
                }
            };
            map.insert(id, new);
        }
        for &o in net.outputs() {
            edited.mark_output(map[&o]);
        }
        let before = fingerprints(&net);
        let after = fingerprints(&edited);
        // c17's first gate (10 = NAND(1,3)) feeds output 22 only.
        assert_ne!(before[0], after[0], "dirty cone must change");
        assert_eq!(before[1], after[1], "untouched cone must not");
    }

    #[test]
    fn iscas_cones_have_no_fingerprint_collisions() {
        let mut seen: HashMap<u128, String> = HashMap::new();
        let mut total = 0usize;
        for row in iscas_rows() {
            let net = row.build();
            let req = topological_delays(&net, &UnitDelay);
            for s in slice_cones(&net, &UnitDelay, &req) {
                total += 1;
                if let Some(prev) = seen.get(&s.fingerprint) {
                    assert_eq!(
                        prev, &s.descriptor,
                        "{}: fingerprint collision between different descriptors",
                        row.name
                    );
                } else {
                    seen.insert(s.fingerprint, s.descriptor.clone());
                }
            }
        }
        assert!(total > 500, "smoke needs a meaningful population");
        // The suite's repeated blocks make isomorphic-cone sharing the
        // common case — the very effect the cone cache exploits.
        assert!(seen.len() >= 50 && seen.len() < total);
    }

    #[test]
    fn single_output_splice_matches_whole_net_approx2() {
        let net = fig4();
        let req = vec![Time::new(2)];
        let slices = slice_cones(&net, &UnitDelay, &req);
        let verdicts: Vec<ConeVerdict> = slices
            .iter()
            .map(|s| analyze_cone(s, Verdict::Approx2, &SessionOptions::default()).unwrap())
            .collect();
        let spliced = splice(&net, &UnitDelay, &req, Verdict::Approx2, &slices, &verdicts);
        let whole = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
        let mut want = whole.maximal.clone();
        want.sort();
        let mut got = spliced.points.clone();
        got.sort();
        assert_eq!(got, want, "one output ⇒ cone == whole net");
        assert_eq!(spliced.nontrivial, whole.has_nontrivial_requirement());
        assert_eq!(spliced.verdict, Verdict::Approx2);
    }

    #[test]
    fn isomorphic_cones_share_a_fingerprint_and_verdict() {
        // Two structurally identical outputs over different inputs.
        let mut net = Network::new("twins");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let d = net.add_input("d").unwrap();
        let g1 = net.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = net.add_gate("g2", GateKind::And, &[c, d]).unwrap();
        net.mark_output(g1);
        net.mark_output(g2);
        let req = vec![Time::new(1), Time::new(1)];
        let slices = slice_cones(&net, &UnitDelay, &req);
        assert_eq!(slices[0].fingerprint, slices[1].fingerprint);
        assert_ne!(slices[0].inputs, slices[1].inputs, "lift maps differ");
        let v = analyze_cone(&slices[0], Verdict::Approx2, &SessionOptions::default()).unwrap();
        let spliced = splice(
            &net,
            &UnitDelay,
            &req,
            Verdict::Approx2,
            &slices,
            &[v.clone(), v],
        );
        assert_eq!(spliced.points.len() % 2, 0, "both cones contribute");
    }

    #[test]
    fn render_is_deterministic() {
        let net = c17();
        let req = topological_delays(&net, &UnitDelay);
        let run = || {
            let slices = slice_cones(&net, &UnitDelay, &req);
            let verdicts: Vec<ConeVerdict> = slices
                .iter()
                .map(|s| analyze_cone(s, Verdict::Approx2, &SessionOptions::default()).unwrap())
                .collect();
            splice(&net, &UnitDelay, &req, Verdict::Approx2, &slices, &verdicts).render()
        };
        assert_eq!(run(), run());
    }
}
