//! Resource governance for analysis sessions.
//!
//! The paper's own experiments (Tables 1–2) show the exact and
//! parametric relations blowing up on mid-size benchmarks ("memory
//! out" / "never finished" rows). A [`Budget`] bounds every analysis
//! run — wall-clock deadline, BDD node budget, SAT conflict budget and
//! a cooperative cancel flag — so a query returns a structured
//! [`AnalysisError`] instead of running away or panicking, and the
//! session layer ([`crate::session::run_with_fallback`]) can degrade
//! toward the always-sound topological baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xrta_bdd::BddError;

/// Unified error type for governed analyses: every way a run can stop
/// short of an answer, as data rather than a panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    /// The BDD node budget was exhausted (the paper's "memory out").
    Capacity {
        /// The node limit that was hit.
        limit: usize,
    },
    /// The wall-clock deadline passed mid-analysis.
    DeadlineExceeded,
    /// The SAT conflict budget was exhausted without a usable verdict.
    SatBudget,
    /// A worker thread panicked (poisoned cone); the rest of the
    /// session survived.
    WorkerPanic,
    /// The byte-accurate memory budget hit its hard watermark after
    /// in-place reclamation (the paper's "mem-out", but governed).
    MemoryOut,
    /// The cooperative cancel flag was raised.
    Interrupted,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Capacity { limit } => {
                write!(f, "bdd node budget of {limit} nodes exhausted")
            }
            AnalysisError::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            AnalysisError::SatBudget => write!(f, "sat conflict budget exhausted"),
            AnalysisError::WorkerPanic => write!(f, "analysis worker panicked"),
            AnalysisError::MemoryOut => write!(f, "memory budget exhausted"),
            AnalysisError::Interrupted => write!(f, "analysis cancelled"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<BddError> for AnalysisError {
    fn from(e: BddError) -> Self {
        match e {
            BddError::Capacity { limit } => AnalysisError::Capacity { limit },
            BddError::Deadline => AnalysisError::DeadlineExceeded,
            BddError::MemoryOut => AnalysisError::MemoryOut,
            BddError::Cancelled => AnalysisError::Interrupted,
        }
    }
}

impl From<xrta_sat::StopReason> for AnalysisError {
    fn from(r: xrta_sat::StopReason) -> Self {
        match r {
            xrta_sat::StopReason::Conflicts | xrta_sat::StopReason::Propagations => {
                AnalysisError::SatBudget
            }
            xrta_sat::StopReason::Deadline => AnalysisError::DeadlineExceeded,
            xrta_sat::StopReason::MemoryOut => AnalysisError::MemoryOut,
            xrta_sat::StopReason::Cancelled => AnalysisError::Interrupted,
        }
    }
}

/// A resource budget for one analysis run.
///
/// Cloning shares the cancel flag (so a clone handed to another thread
/// can stop the run) but copies the static limits. The default budget
/// is unlimited: every limit off, matching the ungoverned entry points.
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<usize>,
    sat_conflicts: Option<u64>,
    mem_limit: Option<u64>,
    cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (and a fresh, unraised cancel flag).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            node_limit: None,
            sat_conflicts: None,
            mem_limit: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the wall-clock deadline to `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets (or clears) an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets (or clears) the BDD node budget.
    pub fn with_node_limit(mut self, limit: Option<usize>) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets (or clears) the SAT conflict budget (per oracle query).
    pub fn with_sat_conflicts(mut self, conflicts: Option<u64>) -> Self {
        self.sat_conflicts = conflicts;
        self
    }

    /// Sets (or clears) the byte-accurate memory limit, enforced
    /// against the process-wide [`xrta_robust::mem`] meter by every
    /// instrumented engine this budget is handed to.
    pub fn with_mem_limit(mut self, limit: Option<u64>) -> Self {
        self.mem_limit = limit;
        self
    }

    /// Shares an existing cancel flag (e.g. one hooked to a signal
    /// handler) instead of this budget's own.
    pub fn with_cancel_flag(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = cancel;
        self
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The BDD node budget, if any.
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// The SAT conflict budget, if any.
    pub fn sat_conflicts(&self) -> Option<u64> {
        self.sat_conflicts
    }

    /// The byte-accurate memory limit, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.mem_limit
    }

    /// The shared cancel flag, for handing to engines and workers.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Raises the cancel flag: every engine polling this budget stops
    /// cooperatively at its next poll point.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Has the cancel flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Cooperative check: `Err` as soon as the budget is cancelled or
    /// past its deadline.
    pub fn check(&self) -> Result<(), AnalysisError> {
        if self.is_cancelled() {
            return Err(AnalysisError::Interrupted);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(AnalysisError::DeadlineExceeded);
            }
        }
        if let Some(limit) = self.mem_limit {
            if xrta_robust::mem::global().pressure(limit) == xrta_robust::mem::Pressure::Hard {
                return Err(AnalysisError::MemoryOut);
            }
        }
        Ok(())
    }

    /// The effective BDD node limit when an options struct also carries
    /// one: the tighter of the two.
    pub fn effective_node_limit(&self, options_limit: usize) -> usize {
        match self.node_limit {
            Some(l) => l.min(options_limit),
            None => options_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.check().is_ok());
        assert!(b.remaining().is_none());
        assert_eq!(b.effective_node_limit(100), 100);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::unlimited();
        let c = b.clone();
        c.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.check(), Err(AnalysisError::Interrupted));
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(b.check(), Err(AnalysisError::DeadlineExceeded));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn node_limits_take_the_tighter_bound() {
        let b = Budget::unlimited().with_node_limit(Some(50));
        assert_eq!(b.effective_node_limit(100), 50);
        assert_eq!(b.effective_node_limit(20), 20);
    }

    #[test]
    fn bdd_errors_map_into_analysis_errors() {
        assert_eq!(
            AnalysisError::from(BddError::Capacity { limit: 7 }),
            AnalysisError::Capacity { limit: 7 }
        );
        assert_eq!(
            AnalysisError::from(BddError::Deadline),
            AnalysisError::DeadlineExceeded
        );
        assert_eq!(
            AnalysisError::from(BddError::Cancelled),
            AnalysisError::Interrupted
        );
        assert_eq!(
            AnalysisError::from(BddError::MemoryOut),
            AnalysisError::MemoryOut
        );
        assert_eq!(
            AnalysisError::from(xrta_sat::StopReason::MemoryOut),
            AnalysisError::MemoryOut
        );
    }

    #[test]
    fn mem_limit_is_carried_and_checked() {
        let b = Budget::unlimited().with_mem_limit(Some(64 << 20));
        assert_eq!(b.mem_limit(), Some(64 << 20));
        // The global meter sits far below 64M in tests, so the
        // backstop check passes.
        assert!(b.check().is_ok());
        assert_eq!(
            AnalysisError::MemoryOut.to_string(),
            "memory budget exhausted"
        );
    }
}
