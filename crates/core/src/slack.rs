//! True (false-path-aware) slack of a node — the "interesting
//! subproblem" the paper's §3 calls out for performance-oriented
//! resynthesis.
//!
//! The slack combines a *true arrival time* at the node (functional
//! timing analysis of its fanin cone) with a *true required time*
//! (§4-style search on the fanout network `N_FO` cut at the node).

use xrta_chi::{EngineKind, FunctionalTiming};
use xrta_network::{Network, NodeId};
use xrta_timing::{analyze, DelayModel, Time};

use crate::plan::plan_leaves;

/// True-slack report for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrueSlack {
    /// True (functional) arrival time at the node.
    pub arrival: Time,
    /// True (false-path-aware, value-independent) required time.
    pub required: Time,
    /// `required − arrival`.
    pub slack: Time,
    /// Classical topological slack, for comparison (never larger).
    pub topo_slack: Time,
}

fn diff(required: Time, arrival: Time) -> Time {
    if required.is_inf() || arrival.is_neg_inf() {
        Time::INF
    } else if required.is_neg_inf() || arrival.is_inf() {
        Time::NEG_INF
    } else {
        Time::new(required.ticks() - arrival.ticks())
    }
}

/// Computes the true slack of `node` under the given environment.
///
/// The required side searches the candidate times of the cut network
/// `N_FO` for the latest safe (value-independent) deadline at the node,
/// validating each candidate with full functional timing analysis —
/// the §4.3 scheme specialized to a single coordinate.
///
/// # Panics
///
/// Panics on length mismatches, or if `node` is a primary input or a
/// primary output (cut nodes must be internal).
pub fn true_slack<D: DelayModel>(
    net: &Network,
    model: &D,
    input_arrivals: &[Time],
    output_required: &[Time],
    node: NodeId,
    engine: EngineKind,
) -> TrueSlack {
    assert_eq!(input_arrivals.len(), net.inputs().len());
    assert_eq!(output_required.len(), net.outputs().len());
    assert!(
        !net.node(node).is_input(),
        "true slack of a primary input is not defined here"
    );

    // Arrival side: functional timing on the full network.
    let ft = FunctionalTiming::new(net, model, input_arrivals.to_vec(), engine);
    let arrival = ft.true_arrival(node);

    // Required side: cut at the node; candidates from the leaf plan.
    let (fo, map) = net.cut_at(&[node]);
    let fo_node = map[&node];
    let node_pos = fo
        .inputs()
        .iter()
        .position(|&fi| fi == fo_node)
        .expect("cut node is an fo input");
    // Arrival vector template for the fo network: original arrivals for
    // X inputs, variable at the node position.
    let base: Vec<Time> = fo
        .inputs()
        .iter()
        .map(|&fi| {
            if fi == fo_node {
                Time::ZERO // placeholder
            } else {
                let name = &fo.node(fi).name;
                let orig = net.find(name).expect("fo input from source");
                let pos = net
                    .inputs()
                    .iter()
                    .position(|&p| p == orig)
                    .expect("fo input is a source PI");
                input_arrivals[pos]
            }
        })
        .collect();
    let fo_required: Vec<Time> = fo
        .outputs()
        .iter()
        .map(|&o| {
            let name = &fo.node(o).name;
            let orig = net.find(name).expect("fo output from source");
            let pos = net
                .outputs()
                .iter()
                .position(|&p| p == orig)
                .expect("fo output is a source PO");
            output_required[pos]
        })
        .collect();
    let plan = plan_leaves(&fo, model, &fo_required, |pos| pos == node_pos);
    let mut candidates = plan.per_input[node_pos].merged();
    candidates.push(Time::INF);
    candidates.dedup();

    let safe = |t: Time| {
        let mut arr = base.clone();
        arr[node_pos] = t;
        FunctionalTiming::new(&fo, model, arr, engine).meets(&fo_required)
    };
    // Largest safe candidate; safety is monotone decreasing in t, so
    // scan from the latest.
    let mut required = None;
    for &t in candidates.iter().rev() {
        if safe(t) {
            required = Some(t);
            break;
        }
    }
    let required = required.unwrap_or_else(|| {
        // Even the earliest candidate fails only if the environment is
        // already infeasible; fall back to the topological value.
        let t = analyze(&fo, model, &base, &fo_required);
        t.required[fo_node.index()]
    });

    let topo = analyze(net, model, input_arrivals, output_required);
    TrueSlack {
        arrival,
        required,
        slack: diff(required, arrival),
        topo_slack: topo.slack(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    #[test]
    fn chain_slack_matches_topology() {
        // No false paths: true slack equals topological slack.
        let mut net = Network::new("chain");
        let x = net.add_input("x").unwrap();
        let g = net.add_gate("g", GateKind::Buf, &[x]).unwrap();
        let z = net.add_gate("z", GateKind::Buf, &[g]).unwrap();
        net.mark_output(z);
        let s = true_slack(
            &net,
            &UnitDelay,
            &[Time::ZERO],
            &[Time::new(5)],
            g,
            EngineKind::Bdd,
        );
        assert_eq!(s.arrival, Time::new(1));
        assert_eq!(s.required, Time::new(4));
        assert_eq!(s.slack, Time::new(3));
        assert_eq!(s.topo_slack, Time::new(3));
    }

    #[test]
    fn false_path_widens_slack() {
        // v feeds only the d0 input of a MUX whose other data input is
        // fast; when s=1 the v value is irrelevant. The true required
        // time at v is later than topological whenever the false-path
        // effect is real… here the required search is value-independent
        // so it can only improve if v is *never* needed late. Construct
        // that: v reaches the output only through a path that is false
        // at the worst alignment — the two-MUX bypass with v inside the
        // long branch.
        let mut net = Network::new("fp");
        let s = net.add_input("s").unwrap();
        let x = net.add_input("x").unwrap();
        let c = net.add_input("c").unwrap();
        let v = net.add_gate("v", GateKind::Buf, &[x]).unwrap(); // inside the long branch
        let b2 = net.add_gate("b2", GateKind::Buf, &[v]).unwrap();
        let m1 = net.add_gate("m1", GateKind::Mux, &[s, x, b2]).unwrap();
        let z = net.add_gate("z", GateKind::Mux, &[s, m1, c]).unwrap();
        net.mark_output(z);
        let sl = true_slack(
            &net,
            &UnitDelay,
            &[Time::ZERO; 3],
            &[Time::new(3)],
            v,
            EngineKind::Bdd,
        );
        assert!(
            sl.slack > sl.topo_slack,
            "true slack {} should beat topological {}",
            sl.slack,
            sl.topo_slack
        );
    }

    #[test]
    fn both_engines_agree() {
        let mut net = Network::new("agree");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net.add_gate("g", GateKind::Nand, &[a, b]).unwrap();
        let h = net.add_gate("h", GateKind::Or, &[g, a]).unwrap();
        net.mark_output(h);
        let s1 = true_slack(
            &net,
            &UnitDelay,
            &[Time::ZERO; 2],
            &[Time::new(4)],
            g,
            EngineKind::Bdd,
        );
        let s2 = true_slack(
            &net,
            &UnitDelay,
            &[Time::ZERO; 2],
            &[Time::new(4)],
            g,
            EngineKind::Sat,
        );
        assert_eq!(s1, s2);
    }

    #[test]
    fn unconstraining_node_gets_infinite_required() {
        // g = NAND(a,b) feeds h = OR(g, a)… make g irrelevant: h = OR(a, ¬a)
        // is constant; any g candidate is safe including ∞.
        let mut net = Network::new("irrel");
        let a = net.add_input("a").unwrap();
        let na = net.add_gate("na", GateKind::Not, &[a]).unwrap();
        let g = net.add_gate("g", GateKind::Buf, &[na]).unwrap();
        let z = net.add_gate("z", GateKind::Or, &[a, na, g]).unwrap();
        net.mark_output(z);
        // z = a + ¬a + g ≡ 1; g can be late forever. Required time at g
        // should climb to ∞.
        let s = true_slack(
            &net,
            &UnitDelay,
            &[Time::ZERO],
            &[Time::new(3)],
            g,
            EngineKind::Bdd,
        );
        assert!(s.required.is_inf(), "required {:?}", s.required);
        assert!(s.slack.is_inf());
    }
}
