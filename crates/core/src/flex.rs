//! Subcircuit timing flexibility (§5): mapping the top-level timing
//! specification onto a subcircuit `N'` with inputs `U` and outputs `V`.
//!
//! * [`subcircuit_arrival_times`] — §5.1: value-dependent arrival times
//!   at `U`, computed on the fanin cone `N_FI`, folded onto `B^|U|` with
//!   dominated tuples dropped (Figure 6's table);
//! * [`subcircuit_required_times`] — §5.2: required times at `V`,
//!   computed on the cut network `N_FO` with leaf variables only at the
//!   `V` inputs;
//! * [`coupled_flexibility`] — §5.3: both sides kept in terms of the
//!   primary inputs `X` for a tighter coupling when the subcircuit's
//!   function is preserved.

use xrta_bdd::{Bdd, Ref, Var};
use xrta_chi::{ChiBddEngine, KnownArrivalLeaves};
use xrta_network::{GlobalBdds, Network, NodeId};
use xrta_timing::{arrival_times, DelayModel, Time};

use crate::governor::AnalysisError;
use crate::leaves::{LeafMode, PlannedLeaves};
use crate::plan::plan_leaves;
use crate::types::RequiredTimeTuple;

/// Options for the §5.1 arrival analysis.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalFlexOptions {
    /// BDD node limit.
    pub node_limit: usize,
    /// Cap on distinct candidate arrival times per subcircuit input;
    /// exceeding it keeps a conservative subsample (always including the
    /// topological arrival).
    pub max_times_per_input: usize,
}

impl Default for ArrivalFlexOptions {
    fn default() -> Self {
        ArrivalFlexOptions {
            node_limit: 1 << 22,
            max_times_per_input: 32,
        }
    }
}

/// One class of the refined partition of the input space: all vectors in
/// `region` produce the same arrival-time tuple at `U`.
#[derive(Clone, Debug)]
pub struct ArrivalClass {
    /// Characteristic function over the `X` variables.
    pub region: Ref,
    /// Arrival time per subcircuit input (aligned with the `u` list).
    pub arrival: Vec<Time>,
}

/// §5.1 result: value-dependent arrival times at the subcircuit inputs.
pub struct SubcircuitArrivals {
    /// Manager holding the regions.
    pub bdd: Bdd,
    /// `X` variables (aligned with the cone's primary inputs).
    pub x_vars: Vec<Var>,
    /// Names of the cone's primary inputs, aligned with `x_vars`.
    pub x_names: Vec<String>,
    /// The refined partition (non-empty regions only).
    pub classes: Vec<ArrivalClass>,
    /// Folded view: for each `U` vector, the *maximal* arrival tuples
    /// observable at it. An empty tuple list means the vector can never
    /// occur (a satisfiability don't-care).
    pub folded: Vec<(Vec<bool>, Vec<Vec<Time>>)>,
}

/// Computes value-dependent arrival times at the subcircuit inputs `u`
/// (node ids of the *original* network `net`), per §5.1.
///
/// # Errors
///
/// Returns [`AnalysisError::Capacity`] on BDD node-limit exhaustion.
///
/// # Panics
///
/// Panics if `input_arrivals.len() != net.inputs().len()`, if `u` is
/// empty, or if `u.len() > 12` (the folded table enumerates `B^|U|`).
pub fn subcircuit_arrival_times<D: DelayModel>(
    net: &Network,
    model: &D,
    input_arrivals: &[Time],
    u: &[NodeId],
    options: ArrivalFlexOptions,
) -> Result<SubcircuitArrivals, AnalysisError> {
    assert_eq!(input_arrivals.len(), net.inputs().len());
    assert!(!u.is_empty(), "need at least one subcircuit input");
    assert!(
        u.len() <= 12,
        "folded table limited to 12 subcircuit inputs"
    );

    // N_FI: the fanin cone of U.
    let (cone, map) = net.extract_cone(u);
    let u_in_cone: Vec<NodeId> = u.iter().map(|n| map[n]).collect();
    // Arrival times of the cone inputs (a subset of the original PIs).
    let cone_arrivals: Vec<Time> = cone
        .inputs()
        .iter()
        .map(|&ci| {
            let name = &cone.node(ci).name;
            let orig = net.find(name).expect("cone input exists in source");
            let pos = net
                .inputs()
                .iter()
                .position(|&p| p == orig)
                .expect("cone input is a source PI");
            input_arrivals[pos]
        })
        .collect();

    // Candidate arrival-time lists per u_i: all path-delay sums.
    let time_lists: Vec<Vec<Time>> =
        candidate_arrival_times(&cone, model, &cone_arrivals, &u_in_cone, options);

    let mut bdd = Bdd::with_node_limit(options.node_limit);
    let x_vars: Vec<Var> = cone.inputs().iter().map(|_| bdd.fresh_var()).collect();
    let x_names: Vec<String> = cone
        .inputs()
        .iter()
        .map(|&ci| cone.node(ci).name.clone())
        .collect();
    let mut engine = ChiBddEngine::new(
        &cone,
        model,
        KnownArrivalLeaves {
            arrivals: cone_arrivals.clone(),
            input_vars: x_vars.clone(),
        },
    );

    // Per u_i: the partition S_1 … S_l of X by first-stable time.
    let mut partitions: Vec<Vec<(Time, Ref)>> = Vec::with_capacity(u.len());
    for (i, &ui) in u_in_cone.iter().enumerate() {
        let mut classes = Vec::new();
        let mut prev = Ref::FALSE;
        for &t in &time_lists[i] {
            let settled = engine.chi_stable(&mut bdd, &cone, ui, t)?;
            let nprev = bdd.try_not(prev)?;
            let fresh = bdd.try_and(settled, nprev)?;
            if !fresh.is_false() {
                classes.push((t, fresh));
            }
            prev = settled;
        }
        debug_assert!(prev.is_true(), "u_{i} settles by its topological arrival");
        partitions.push(classes);
    }

    // Superimpose: product of the per-input partitions, pruning empties.
    let mut classes: Vec<ArrivalClass> = Vec::new();
    let mut stack: Vec<(usize, Ref, Vec<Time>)> = vec![(0, Ref::TRUE, Vec::new())];
    while let Some((i, region, times)) = stack.pop() {
        if i == partitions.len() {
            classes.push(ArrivalClass {
                region,
                arrival: times,
            });
            continue;
        }
        for (t, s) in &partitions[i] {
            let inter = bdd.try_and(region, *s)?;
            if !inter.is_false() {
                let mut ts = times.clone();
                ts.push(*t);
                stack.push((i + 1, inter, ts));
            }
        }
    }

    // Fold onto B^|U|: image of each region under the U functions.
    let globals = GlobalBdds::build_with_vars(&mut bdd, &cone, &x_vars)?;
    let u_fns: Vec<Ref> = u_in_cone.iter().map(|&ui| globals.of(ui)).collect();
    let mut folded: Vec<(Vec<bool>, Vec<Vec<Time>>)> = Vec::new();
    for vec_idx in 0..(1usize << u.len()) {
        let u_vec: Vec<bool> = (0..u.len()).map(|b| (vec_idx >> b) & 1 == 1).collect();
        // Characteristic function of X vectors driving this U vector.
        let mut drives = Ref::TRUE;
        for (b, &uf) in u_fns.iter().enumerate() {
            let lit = if u_vec[b] { uf } else { bdd.try_not(uf)? };
            drives = bdd.try_and(drives, lit)?;
            if drives.is_false() {
                break;
            }
        }
        let mut tuples: Vec<Vec<Time>> = Vec::new();
        if !drives.is_false() {
            for c in &classes {
                if !bdd.try_and(c.region, drives)?.is_false() {
                    tuples.push(c.arrival.clone());
                }
            }
        }
        // Drop strictly-dominated (pointwise ≤ and ≠) tuples
        // (footnote 11: synthesis must assume the worst case).
        let maximal: Vec<Vec<Time>> = tuples
            .iter()
            .filter(|t| {
                !tuples
                    .iter()
                    .any(|o| o != *t && t.iter().zip(o).all(|(a, b)| a <= b))
            })
            .cloned()
            .collect();
        let mut dedup = maximal;
        dedup.sort();
        dedup.dedup();
        folded.push((u_vec, dedup));
    }

    Ok(SubcircuitArrivals {
        bdd,
        x_vars,
        x_names,
        classes,
        folded,
    })
}

/// All candidate arrival times per target node: path-delay sums from the
/// cone inputs, subsampled conservatively if too many.
fn candidate_arrival_times<D: DelayModel>(
    cone: &Network,
    model: &D,
    cone_arrivals: &[Time],
    targets: &[NodeId],
    options: ArrivalFlexOptions,
) -> Vec<Vec<Time>> {
    use std::collections::BTreeSet;
    let mut sets: Vec<BTreeSet<Time>> = vec![BTreeSet::new(); cone.node_count()];
    for (i, &id) in cone.inputs().iter().enumerate() {
        sets[id.index()].insert(cone_arrivals[i]);
    }
    for id in cone.node_ids() {
        let node = cone.node(id);
        if node.is_input() {
            continue;
        }
        let d = model.delay(cone, id);
        let mut mine = BTreeSet::new();
        for f in &node.fanins {
            for &t in &sets[f.index()] {
                mine.insert(t + d);
            }
        }
        // Conservative subsample: keep the largest (the topological
        // arrival must stay) and spread the rest.
        if mine.len() > options.max_times_per_input {
            let all: Vec<Time> = mine.iter().copied().collect();
            let mut kept = BTreeSet::new();
            kept.insert(*all.last().expect("non-empty"));
            let step = all.len() as f64 / (options.max_times_per_input - 1) as f64;
            for k in 0..(options.max_times_per_input - 1) {
                kept.insert(all[(k as f64 * step) as usize]);
            }
            mine = kept;
        }
        sets[id.index()] = mine;
    }
    // Guarantee the topological arrival is the last entry.
    let topo = arrival_times(cone, model, cone_arrivals);
    targets
        .iter()
        .map(|&t| {
            let mut v: Vec<Time> = sets[t.index()].iter().copied().collect();
            if v.last() != Some(&topo[t.index()]) {
                v.push(topo[t.index()]);
            }
            v
        })
        .collect()
}

/// §5.2 result: latest required-time conditions at the subcircuit
/// outputs `V`, as parametric primes over the cut network.
pub struct SubcircuitRequired {
    /// Names of the `V` nodes, in the order of the `v` argument.
    pub v_names: Vec<String>,
    /// Latest conditions; entry `per_input[i]` of each tuple refers to
    /// `v_names[i]`.
    pub conditions: Vec<RequiredTimeTuple>,
    /// Topological required times at `V`, for comparison.
    pub topo_required: Vec<Time>,
}

/// Computes required times at the subcircuit outputs `v` (node ids of
/// `net`), per §5.2: the network is cut at `V`, known-arrival leaves are
/// used for the original inputs `X`, and parametric (α/β) leaves for the
/// `V` cut inputs.
///
/// # Errors
///
/// Returns [`AnalysisError::Capacity`] on BDD node-limit exhaustion.
///
/// # Panics
///
/// Panics on input/output length mismatches or if a `v` node is a
/// primary input.
pub fn subcircuit_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    input_arrivals: &[Time],
    output_required: &[Time],
    v: &[NodeId],
    node_limit: usize,
) -> Result<SubcircuitRequired, AnalysisError> {
    assert_eq!(input_arrivals.len(), net.inputs().len());
    assert_eq!(output_required.len(), net.outputs().len());
    let (fo, map) = net.cut_at(v);
    let v_names: Vec<String> = v.iter().map(|&n| net.node(n).name.clone()).collect();

    // Mode per fo-input: Known for original PIs, parametric for V cuts.
    let v_new: Vec<NodeId> = v.iter().map(|n| map[n]).collect();
    let modes: Vec<LeafMode> = fo
        .inputs()
        .iter()
        .map(|fi| {
            if v_new.contains(fi) {
                LeafMode::Parametric {
                    value_independent: false,
                }
            } else {
                let name = &fo.node(*fi).name;
                let orig = net.find(name).expect("fo input from source");
                let pos = net
                    .inputs()
                    .iter()
                    .position(|&p| p == orig)
                    .expect("non-cut fo input is a source PI");
                LeafMode::Known(input_arrivals[pos])
            }
        })
        .collect();

    // The fo network keeps only outputs still reachable; align required
    // times with them.
    let fo_required: Vec<Time> = fo
        .outputs()
        .iter()
        .map(|&o| {
            let name = &fo.node(o).name;
            let orig = net.find(name).expect("fo output from source");
            let pos = net
                .outputs()
                .iter()
                .position(|&p| p == orig)
                .expect("fo output is a source PO");
            output_required[pos]
        })
        .collect();

    let mut bdd = Bdd::with_node_limit(node_limit);
    let plan = plan_leaves(&fo, model, &fo_required, |pos| {
        matches!(modes[pos], LeafMode::Parametric { .. })
    });
    let leaves = PlannedLeaves::new(&mut bdd, plan, modes);
    let x_vars = leaves.x_vars.clone();
    let globals = GlobalBdds::build_with_vars(&mut bdd, &fo, &x_vars)?;

    let mut engine = ChiBddEngine::new(&fo, model, leaves);
    let mut constraint = Ref::TRUE;
    for (i, &z) in fo.outputs().iter().enumerate() {
        let t = fo_required[i];
        let chi1 = engine.chi(&mut bdd, &fo, z, true, t)?;
        let chi0 = engine.chi(&mut bdd, &fo, z, false, t)?;
        let gz = globals.of(z);
        let ngz = bdd.try_not(gz)?;
        let c1 = {
            let x = bdd.try_xor(chi1, gz)?;
            bdd.try_not(x)?
        };
        let c0 = {
            let x = bdd.try_xor(chi0, ngz)?;
            bdd.try_not(x)?
        };
        constraint = bdd.try_and(constraint, c1)?;
        constraint = bdd.try_and(constraint, c0)?;
    }
    let leaves = engine.leaves;
    let f = bdd.try_forall(constraint, &x_vars)?;
    let params = leaves.param_var_list();
    let primes = bdd.monotone_primes(f, &params);

    // Re-index conditions onto the v order.
    let fo_pos_of_v: Vec<usize> = v_new
        .iter()
        .map(|vn| {
            fo.inputs()
                .iter()
                .position(|fi| fi == vn)
                .expect("cut node is an fo input")
        })
        .collect();
    let conditions: Vec<RequiredTimeTuple> = primes
        .iter()
        .map(|p| {
            let full = leaves.interpret_prime(p);
            RequiredTimeTuple {
                per_input: fo_pos_of_v.iter().map(|&pos| full.per_input[pos]).collect(),
            }
        })
        .collect();

    let topo = xrta_timing::required_times(&fo, model, &fo_required);
    let topo_required = v_new.iter().map(|vn| topo[vn.index()]).collect();

    Ok(SubcircuitRequired {
        v_names,
        conditions,
        topo_required,
    })
}

/// §5.3: couples the arrival and required sides through `X` when the
/// subcircuit's functionality is preserved.
///
/// For each arrival class (over `X`) and each reachable `V` vector
/// within it, reports the pairing. The `V` functions are evaluated on
/// the original network.
pub struct CoupledClass {
    /// Arrival tuple at `U` for this class.
    pub arrival: Vec<Time>,
    /// Reachable `V` vectors inside the class region.
    pub v_vectors: Vec<Vec<bool>>,
}

/// Computes the §5.3 coupled view (see [`CoupledClass`]).
///
/// # Errors
///
/// Returns [`AnalysisError::Capacity`] on BDD node-limit exhaustion.
///
/// # Panics
///
/// Panics if `u`/`v` are empty or longer than 12.
pub fn coupled_flexibility<D: DelayModel>(
    net: &Network,
    model: &D,
    input_arrivals: &[Time],
    u: &[NodeId],
    v: &[NodeId],
    options: ArrivalFlexOptions,
) -> Result<Vec<CoupledClass>, AnalysisError> {
    assert!(
        v.len() <= 12,
        "coupled view limited to 12 subcircuit outputs"
    );
    let arr = subcircuit_arrival_times(net, model, input_arrivals, u, options)?;
    let mut bdd = arr.bdd;
    // Globals of V over the same X variables: evaluate on the original
    // network, mapping its PIs onto the cone's variable order by name.
    let mut net_vars: Vec<Var> = Vec::with_capacity(net.inputs().len());
    for &pi in net.inputs() {
        let name = &net.node(pi).name;
        match arr.x_names.iter().position(|n| n == name) {
            Some(i) => net_vars.push(arr.x_vars[i]),
            None => net_vars.push(bdd.fresh_var()), // PI outside the cone
        }
    }
    let globals = GlobalBdds::build_with_vars(&mut bdd, net, &net_vars)?;
    let v_fns: Vec<Ref> = v.iter().map(|&n| globals.of(n)).collect();

    let mut out = Vec::new();
    for class in &arr.classes {
        let mut v_vectors = Vec::new();
        for idx in 0..(1usize << v.len()) {
            let v_vec: Vec<bool> = (0..v.len()).map(|b| (idx >> b) & 1 == 1).collect();
            let mut drives = class.region;
            for (b, &vf) in v_fns.iter().enumerate() {
                let lit = if v_vec[b] { vf } else { bdd.try_not(vf)? };
                drives = bdd.try_and(drives, lit)?;
                if drives.is_false() {
                    break;
                }
            }
            if !drives.is_false() {
                v_vectors.push(v_vec);
            }
        }
        out.push(CoupledClass {
            arrival: class.arrival.clone(),
            v_vectors,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    /// The paper's Figure 6 fanin network: three inputs x1 x2 x3; with
    /// unit delays and zero arrivals, u1 arrives at 1 when x1=0 else 2,
    /// u2 arrives at 1 when x1=1 else 2.
    ///
    /// Construction: u1 = AND(NOT(x1), x2-side…) — we reproduce the
    /// *behaviour* stated in the paper's equations:
    ///   χ̃_{u1}^1 = ¬x1, χ̃_{u1}^2 = 1, χ̃_{u2}^1 = x1, χ̃_{u2}^2 = 1,
    /// with functions u1 = x2·x3 gated so the example's folded table
    /// matches: u1u2 = 00/01/11 reachable, 10 unreachable.
    ///
    /// The concrete netlist: n1 = NOT(x1); u1 = AND(n1? no…).
    /// We use: u1 = AND(x2, x3) as a 2-level path whose short cut is
    /// through ¬x1: u1 = MUX(x1, a1, a2) style. To stay faithful to the
    /// table we build the circuit below and assert its behaviour rather
    /// than guess the paper's exact gates.
    fn fig6_like() -> (Network, Vec<NodeId>) {
        // u1: x1=0 → fast path (arrives 1), x1=1 → slow (2).
        //   u1 = AND(nx1_or_t, x2ish)… Simplest: u1 = MUX(x1, x2, b(x2))
        //   where b is a buffer: when x1=0 select direct x2 (depth 1 via
        //   mux only)… depth(mux)=1+max(0,0,1)=2 topologically, but the
        //   x1=0 vectors settle at 1 only if the mux delay is counted…
        // Use explicit structure:
        //   p = BUF(x2)            (arrives 1)
        //   u1 = MUX(x1, x2, p)    (x1=0: needs x2@0 + mux 1 → 1 … but
        //                           topological 2)
        let mut net = Network::new("fig6ish");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let x3 = net.add_input("x3").unwrap();
        let p = net.add_gate("p", GateKind::Buf, &[x2]).unwrap();
        let q = net.add_gate("q", GateKind::Buf, &[x3]).unwrap();
        let u1 = net.add_gate("u1", GateKind::Mux, &[x1, x2, p]).unwrap();
        let u2 = net.add_gate("u2", GateKind::Mux, &[x1, q, x3]).unwrap();
        net.mark_output(u1);
        net.mark_output(u2);
        (net, vec![u1, u2])
    }

    #[test]
    fn arrival_classes_are_value_dependent() {
        let (net, u) = fig6_like();
        let res = subcircuit_arrival_times(
            &net,
            &UnitDelay,
            &[Time::ZERO; 3],
            &u,
            ArrivalFlexOptions::default(),
        )
        .unwrap();
        // u1 = MUX(x1, x2, buf(x2)): for x1=0 the fast data path decides
        // at 1; for x1=1 the buffered path needs 2. Expect at least two
        // distinct arrival tuples across classes.
        let mut tuples: Vec<Vec<Time>> = res.classes.iter().map(|c| c.arrival.clone()).collect();
        tuples.sort();
        tuples.dedup();
        assert!(
            tuples.len() >= 2,
            "value-dependent arrivals expected, got {tuples:?}"
        );
        // Classes partition the space: pairwise disjoint, union = 1.
        let mut bdd = res.bdd;
        let mut union = Ref::FALSE;
        for (i, a) in res.classes.iter().enumerate() {
            for b in res.classes.iter().skip(i + 1) {
                assert!(bdd.and(a.region, b.region).is_false(), "classes overlap");
            }
            union = bdd.or(union, a.region);
        }
        assert!(union.is_true(), "classes must cover the input space");
    }

    #[test]
    fn folded_table_has_all_u_vectors() {
        let (net, u) = fig6_like();
        let res = subcircuit_arrival_times(
            &net,
            &UnitDelay,
            &[Time::ZERO; 3],
            &u,
            ArrivalFlexOptions::default(),
        )
        .unwrap();
        assert_eq!(res.folded.len(), 4);
        // Every reachable U vector gets at least one tuple; tuples are
        // maximal (pairwise incomparable).
        for (u_vec, tuples) in &res.folded {
            for (i, a) in tuples.iter().enumerate() {
                for b in tuples.iter().skip(i + 1) {
                    let a_le_b = a.iter().zip(b).all(|(x, y)| x <= y);
                    let b_le_a = b.iter().zip(a).all(|(x, y)| x <= y);
                    assert!(
                        !(a_le_b || b_le_a) || a == b,
                        "dominated tuple kept at {u_vec:?}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_vector_is_sdc() {
        // u1 = a, u2 = NOT(a): vectors 00 and 11 unreachable.
        let mut net = Network::new("sdc");
        let a = net.add_input("a").unwrap();
        let u1 = net.add_gate("u1", GateKind::Buf, &[a]).unwrap();
        let u2 = net.add_gate("u2", GateKind::Not, &[a]).unwrap();
        net.mark_output(u1);
        net.mark_output(u2);
        let res = subcircuit_arrival_times(
            &net,
            &UnitDelay,
            &[Time::ZERO],
            &[u1, u2],
            ArrivalFlexOptions::default(),
        )
        .unwrap();
        for (u_vec, tuples) in &res.folded {
            let reachable = u_vec[0] != u_vec[1];
            assert_eq!(
                !tuples.is_empty(),
                reachable,
                "vector {u_vec:?} reachability"
            );
        }
    }

    #[test]
    fn required_at_cut_matches_direct_analysis() {
        // Cut right at the (only) path: N_FO of cutting at node g of
        // x → g → z: required time at g equals req(z) − 1.
        let mut net = Network::new("chain");
        let x = net.add_input("x").unwrap();
        let g = net.add_gate("g", GateKind::Buf, &[x]).unwrap();
        let z = net.add_gate("z", GateKind::Buf, &[g]).unwrap();
        net.mark_output(z);
        let res = subcircuit_required_times(
            &net,
            &UnitDelay,
            &[Time::ZERO],
            &[Time::new(5)],
            &[g],
            1 << 20,
        )
        .unwrap();
        assert_eq!(res.v_names, vec!["g".to_string()]);
        assert_eq!(res.topo_required, vec![Time::new(4)]);
        assert_eq!(res.conditions.len(), 1);
        assert_eq!(res.conditions[0].per_input[0].value1, Time::new(4));
        assert_eq!(res.conditions[0].per_input[0].value0, Time::new(4));
    }

    #[test]
    fn required_at_cut_sees_downstream_false_path() {
        // Figure 4's structure with the asymmetric input as an internal
        // node v: z = AND(buf(x1), v, buf(v)), cut at v. The value-0
        // deadline of v relaxes from the topological 0 to 1 (a single
        // early 0 on any AND fanin settles z).
        let mut net = Network::new("ds");
        let x1 = net.add_input("x1").unwrap();
        let a = net.add_input("a").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let v = net.add_gate("v", GateKind::Buf, &[a]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[v]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, v, y2]).unwrap();
        net.mark_output(z);
        let res = subcircuit_required_times(
            &net,
            &UnitDelay,
            &[Time::ZERO; 2],
            &[Time::new(2)],
            &[v],
            1 << 20,
        )
        .unwrap();
        assert_eq!(res.topo_required, vec![Time::new(0)]);
        assert_eq!(res.conditions.len(), 1);
        let c = &res.conditions[0];
        assert_eq!(c.per_input[0].value1, Time::new(0));
        assert_eq!(
            c.per_input[0].value0,
            Time::new(1),
            "value-0 deadline relaxes past topological"
        );
    }

    #[test]
    fn coupled_classes_report_reachable_vectors() {
        let (net, u) = fig6_like();
        let v = vec![u[0]];
        let classes = coupled_flexibility(
            &net,
            &UnitDelay,
            &[Time::ZERO; 3],
            &u,
            &v,
            ArrivalFlexOptions::default(),
        )
        .unwrap();
        assert!(!classes.is_empty());
        for c in &classes {
            assert_eq!(c.arrival.len(), 2);
            assert!(!c.v_vectors.is_empty(), "every class drives some V vector");
        }
    }
}
