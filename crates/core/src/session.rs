//! Resource-governed analysis sessions with graceful degradation.
//!
//! [`run_with_fallback`] answers one required-time query under a
//! [`Budget`], stepping down the ladder
//!
//! ```text
//! exact (§4.1) → approx1 (§4.2) → approx2 (§4.3) → topological (§3)
//! ```
//!
//! whenever a rung exhausts its budget, re-budgeting each rung. Every
//! rung of the ladder is *sound* — it only ever loosens toward the
//! classical topological requirement, never beyond what the oracle
//! proves safe — so a degraded answer is still a correct answer, just a
//! less precise one. The report records provenance: which rung was
//! requested, which answered, and what each attempt spent, so callers
//! can tell a degraded answer from a full one.

use std::time::{Duration, Instant};

use xrta_network::Network;
use xrta_timing::{required_times, DelayModel, Time};

use crate::approx1::{approx1_required_times_governed, Approx1Analysis, Approx1Options};
use crate::approx2::{approx2_required_times_governed, Approx2Options, Approx2Result};
use crate::exact::{exact_required_times_governed, ExactAnalysis, ExactOptions};
use crate::governor::{AnalysisError, Budget};

/// Which rung of the degradation ladder produced (or was asked to
/// produce) an answer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Verdict {
    /// The exact relation of §4.1.
    Exact,
    /// The parametric approximation of §4.2.
    Approx1,
    /// The lattice-climbing approximation of §4.3.
    Approx2,
    /// The classical topological backward sweep of §3 — always
    /// available, always sound, never loose.
    Topological,
}

impl Verdict {
    /// The rung below this one, if any.
    fn next(self) -> Option<Verdict> {
        match self {
            Verdict::Exact => Some(Verdict::Approx1),
            Verdict::Approx1 => Some(Verdict::Approx2),
            Verdict::Approx2 => Some(Verdict::Topological),
            Verdict::Topological => None,
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Exact => write!(f, "exact"),
            Verdict::Approx1 => write!(f, "approx1"),
            Verdict::Approx2 => write!(f, "approx2"),
            Verdict::Topological => write!(f, "topological"),
        }
    }
}

impl std::str::FromStr for Verdict {
    type Err = String;

    /// Inverse of `Display`; `"topo"` is accepted as CLI shorthand.
    fn from_str(s: &str) -> Result<Verdict, String> {
        match s {
            "exact" => Ok(Verdict::Exact),
            "approx1" => Ok(Verdict::Approx1),
            "approx2" => Ok(Verdict::Approx2),
            "topological" | "topo" => Ok(Verdict::Topological),
            other => Err(format!("unknown verdict {other:?}")),
        }
    }
}

/// Options for one analysis session.
#[derive(Clone, Debug, Default)]
pub struct SessionOptions {
    /// Budget template: node/conflict limits and the *shared* cancel
    /// flag. Any deadline set here is absolute across the whole
    /// session; for per-rung re-budgeting use [`SessionOptions::timeout`].
    pub budget: Budget,
    /// Per-rung wall-clock allowance: each attempted rung gets a fresh
    /// deadline of this length. Overrides any deadline on `budget`.
    pub timeout: Option<Duration>,
    /// Step down the ladder on budget exhaustion instead of failing.
    pub fallback: bool,
    /// Options for the exact rung.
    pub exact: ExactOptions,
    /// Options for the parametric rung.
    pub approx1: Approx1Options,
    /// Options for the lattice-climbing rung.
    pub approx2: Approx2Options,
}

/// The answer a session produced, tagged by rung.
pub enum SessionAnswer {
    /// §4.1 relation.
    Exact(ExactAnalysis),
    /// §4.2 parametric conditions.
    Approx1(Approx1Analysis),
    /// §4.3 maximal safe points.
    Approx2(Approx2Result),
    /// §3 topological required times at the primary inputs (aligned
    /// with `net.inputs()`).
    Topological(Vec<Time>),
}

impl std::fmt::Debug for SessionAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionAnswer::Exact(_) => write!(f, "SessionAnswer::Exact(..)"),
            SessionAnswer::Approx1(_) => write!(f, "SessionAnswer::Approx1(..)"),
            SessionAnswer::Approx2(_) => write!(f, "SessionAnswer::Approx2(..)"),
            SessionAnswer::Topological(v) => f
                .debug_tuple("SessionAnswer::Topological")
                .field(v)
                .finish(),
        }
    }
}

/// Record of one rung attempt: what it spent and how it ended.
#[derive(Clone, Copy, Debug)]
pub struct RungAttempt {
    /// The rung attempted.
    pub rung: Verdict,
    /// Wall-clock time the attempt consumed.
    pub wall: Duration,
    /// `None` when the rung answered; the exhaustion reason otherwise.
    pub error: Option<AnalysisError>,
}

/// Everything a session run reports: the answer, its provenance and
/// the per-rung resource spend.
#[derive(Debug)]
pub struct SessionReport {
    /// The rung originally requested.
    pub requested: Verdict,
    /// The rung that answered.
    pub verdict: Verdict,
    /// The answer itself.
    pub answer: SessionAnswer,
    /// Every rung attempted, in order (the last one answered).
    pub attempts: Vec<RungAttempt>,
}

/// The serialisable essence of a session answer: the facts every
/// machine consumer (batch journal, serve protocol) records, with the
/// rung-specific analysis structures boiled away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnswerDigest {
    /// Whether the answer beats the topological requirement anywhere.
    pub nontrivial: bool,
    /// Input-side witness points (aligned with `net.inputs()`):
    /// approx2's maximal safe points, or the single topological
    /// vector; empty for the relational rungs.
    pub points: Vec<Vec<Time>>,
}

impl SessionReport {
    /// Did the session answer below the requested rung?
    pub fn degraded(&self) -> bool {
        self.verdict != self.requested
    }

    /// Collapses the answer into its [`AnswerDigest`]. Takes `&mut`
    /// because the exact relation memoises its non-triviality check.
    pub fn digest(&mut self) -> AnswerDigest {
        let (nontrivial, points) = match &mut self.answer {
            SessionAnswer::Exact(a) => (a.has_nontrivial_requirement(), Vec::new()),
            SessionAnswer::Approx1(a) => (a.has_nontrivial_requirement(), Vec::new()),
            SessionAnswer::Approx2(r) => (r.has_nontrivial_requirement(), r.maximal.clone()),
            SessionAnswer::Topological(v) => (false, vec![v.clone()]),
        };
        AnswerDigest { nontrivial, points }
    }

    /// The budget-exhaustion reason that forced the first step down
    /// the ladder, if any.
    pub fn exhaustion_reason(&self) -> Option<AnalysisError> {
        self.attempts.iter().find_map(|a| a.error)
    }
}

/// Runs one required-time query, degrading down the ladder on budget
/// exhaustion when `options.fallback` is set.
///
/// Each rung gets a fresh budget from the template (same limits, fresh
/// deadline, shared cancel flag). The topological rung needs no oracle
/// and cannot fail, so a fallback session always returns an answer —
/// unless the shared cancel flag is raised, which aborts the whole
/// session with [`AnalysisError::Interrupted`] regardless of fallback.
///
/// Without fallback, the requested rung's error is returned as-is.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn run_with_fallback<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    requested: Verdict,
    options: &SessionOptions,
) -> Result<SessionReport, AnalysisError> {
    assert_eq!(output_required.len(), net.outputs().len());
    let mut attempts: Vec<RungAttempt> = Vec::new();
    let mut rung = requested;
    loop {
        // Re-budget: a fresh per-rung deadline, the same static
        // limits, the same (shared) cancel flag.
        let budget = match options.timeout {
            Some(t) => options
                .budget
                .clone()
                .with_deadline(Some(Instant::now() + t)),
            None => options.budget.clone(),
        };
        if budget.is_cancelled() {
            return Err(AnalysisError::Interrupted);
        }
        let t0 = Instant::now();
        // Fault-injection site on the rung transition: a fired
        // schedule forges a budget exhaustion for this rung, driving
        // the ordinary fallback machinery below. No-op unless armed.
        let injected: Option<AnalysisError> = match xrta_robust::failpoint::eval("session::rung") {
            Some(xrta_robust::failpoint::Outcome::Exhausted) => Some(AnalysisError::Capacity {
                limit: budget.node_limit().unwrap_or(0),
            }),
            Some(xrta_robust::failpoint::Outcome::ReturnError) => {
                Some(AnalysisError::DeadlineExceeded)
            }
            None => None,
        };
        let outcome: Result<SessionAnswer, AnalysisError> = if let Some(e) = injected {
            Err(e)
        } else {
            match rung {
                Verdict::Exact => exact_required_times_governed(
                    net,
                    model,
                    output_required,
                    options.exact,
                    &budget,
                )
                .map(SessionAnswer::Exact),
                Verdict::Approx1 => approx1_required_times_governed(
                    net,
                    model,
                    output_required,
                    options.approx1,
                    &budget,
                )
                .map(SessionAnswer::Approx1),
                Verdict::Approx2 => approx2_required_times_governed(
                    net,
                    model,
                    output_required,
                    options.approx2,
                    &budget,
                )
                .map(SessionAnswer::Approx2),
                Verdict::Topological => {
                    let req = required_times(net, model, output_required);
                    let at_inputs: Vec<Time> =
                        net.inputs().iter().map(|i| req[i.index()]).collect();
                    Ok(SessionAnswer::Topological(at_inputs))
                }
            }
        };
        let wall = t0.elapsed();
        match outcome {
            Ok(answer) => {
                attempts.push(RungAttempt {
                    rung,
                    wall,
                    error: None,
                });
                return Ok(SessionReport {
                    requested,
                    verdict: rung,
                    answer,
                    attempts,
                });
            }
            Err(AnalysisError::Interrupted) => return Err(AnalysisError::Interrupted),
            Err(e) => {
                attempts.push(RungAttempt {
                    rung,
                    wall,
                    error: Some(e),
                });
                if !options.fallback {
                    return Err(e);
                }
                match rung.next() {
                    Some(below) => rung = below,
                    // Unreachable in practice: the topological rung
                    // cannot fail. Kept as an error, not a panic.
                    None => return Err(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_circuits::fig4;
    use xrta_timing::{topological_delays, UnitDelay};

    fn req2() -> Vec<Time> {
        vec![Time::new(2)]
    }

    #[test]
    fn unlimited_session_answers_at_requested_rung() {
        let net = fig4();
        for rung in [
            Verdict::Exact,
            Verdict::Approx1,
            Verdict::Approx2,
            Verdict::Topological,
        ] {
            let r = run_with_fallback(&net, &UnitDelay, &req2(), rung, &SessionOptions::default())
                .unwrap();
            assert_eq!(r.verdict, rung);
            assert!(!r.degraded());
            assert_eq!(r.attempts.len(), 1);
            assert!(r.exhaustion_reason().is_none());
        }
    }

    #[test]
    fn tiny_node_budget_degrades_exact_to_topological_equivalent() {
        let net = fig4();
        let opts = SessionOptions {
            budget: Budget::unlimited().with_node_limit(Some(8)),
            fallback: true,
            ..SessionOptions::default()
        };
        let r = run_with_fallback(&net, &UnitDelay, &req2(), Verdict::Exact, &opts).unwrap();
        assert!(r.degraded(), "8 nodes cannot fit the exact relation");
        assert!(matches!(
            r.exhaustion_reason(),
            Some(AnalysisError::Capacity { .. })
        ));
        // BDD rungs both die on capacity; approx2's BDD-free SAT oracle
        // or the topological rung answers.
        assert!(r.verdict > Verdict::Approx1);
    }

    #[test]
    fn fallback_off_surfaces_the_structured_error() {
        let net = fig4();
        let opts = SessionOptions {
            budget: Budget::unlimited().with_node_limit(Some(8)),
            fallback: false,
            ..SessionOptions::default()
        };
        let e = run_with_fallback(&net, &UnitDelay, &req2(), Verdict::Exact, &opts).unwrap_err();
        assert!(matches!(e, AnalysisError::Capacity { limit: 8 }));
    }

    #[test]
    fn topological_answer_matches_timing_sweep() {
        let net = fig4();
        let r = run_with_fallback(
            &net,
            &UnitDelay,
            &req2(),
            Verdict::Topological,
            &SessionOptions::default(),
        )
        .unwrap();
        let SessionAnswer::Topological(at_inputs) = r.answer else {
            panic!("topological answer expected");
        };
        // req = 2 at the single output; with unit delays the inputs'
        // topological requirement follows the backward sweep.
        let req = crate::session::required_times(&net, &UnitDelay, &req2());
        let want: Vec<Time> = net.inputs().iter().map(|i| req[i.index()]).collect();
        assert_eq!(at_inputs, want);
        let _ = topological_delays(&net, &UnitDelay);
    }

    #[test]
    fn cancelled_session_aborts_even_with_fallback() {
        let net = fig4();
        let opts = SessionOptions {
            budget: Budget::unlimited(),
            fallback: true,
            ..SessionOptions::default()
        };
        opts.budget.cancel();
        let e = run_with_fallback(&net, &UnitDelay, &req2(), Verdict::Exact, &opts).unwrap_err();
        assert_eq!(e, AnalysisError::Interrupted);
    }
}
