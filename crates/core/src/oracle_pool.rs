//! Work-stealing task queues for the §4.3 oracle workers.
//!
//! The old oracle split each validation batch statically
//! (`k % threads == w`) and re-spawned `std::thread::scope` workers per
//! batch, so one slow cone serialized the whole round and trivial
//! circuits paid thread-spawn latency hundreds of times. This module
//! provides the queue half of the replacement: a **global injector**
//! plus **per-worker stealable deques**. The coordinator seeds a
//! round's batches round-robin into the worker deques; each worker
//! drains its own deque LIFO and, when empty, steals FIFO from its
//! siblings (oldest first — the classic split that keeps stolen work
//! coarse), falling back to the injector, which holds lower-priority
//! speculative probes. Idle workers park on a condvar and are woken by
//! pushes; `close` wakes everyone for shutdown.
//!
//! The queues are deliberately std-only (`Mutex<VecDeque>` per deque —
//! the workspace builds offline, so no crossbeam): oracle tasks are
//! milliseconds-to-seconds of SAT solving, so queue overhead is noise,
//! and a mutex per deque keeps the memory model trivially sound.
//! Poisoning is tolerated everywhere — a panicking worker must not
//! wedge the pool.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Poison-tolerant lock (see the module docs).
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A global injector plus `n` stealable worker deques. Slot `0` is, by
/// convention, the coordinating thread — it participates in every
/// round, so helpers only ever add parallelism, never replace it.
pub struct StealQueues<T> {
    injector: Mutex<VecDeque<T>>,
    locals: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicUsize,
    open: AtomicBool,
    /// Epoch bumped on every push/close; parked workers compare it to
    /// decide whether a wakeup is stale.
    gate: Mutex<u64>,
    bell: Condvar,
}

impl<T> StealQueues<T> {
    /// Creates queues for `workers` slots (≥ 1; slot 0 included).
    pub fn new(workers: usize) -> Self {
        StealQueues {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            steals: AtomicUsize::new(0),
            open: AtomicBool::new(true),
            gate: Mutex::new(0),
            bell: Condvar::new(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Pushes one task to the global injector and wakes workers. The
    /// coordinator seeds round batches via [`StealQueues::push_local`];
    /// the injector holds speculative probes, which every worker
    /// deprioritizes below round work.
    pub fn push(&self, task: T) {
        plock(&self.injector).push_back(task);
        self.ring();
    }

    /// Pushes one task to worker `w`'s own deque (stealable by others)
    /// and wakes workers.
    pub fn push_local(&self, w: usize, task: T) {
        plock(&self.locals[w]).push_back(task);
        self.ring();
    }

    /// Takes one task for worker `w`: own deque first (newest first —
    /// best cache locality), then steal the oldest task of a sibling,
    /// then the injector. Round batches live in the worker deques and
    /// speculative work in the injector, so this order finishes the
    /// round barrier before burning time on speculation.
    pub fn pop(&self, w: usize) -> Option<T> {
        if let Some(t) = self.pop_round(w) {
            return Some(t);
        }
        plock(&self.injector).pop_front()
    }

    /// Like [`StealQueues::pop`] but never touches the injector: worker
    /// deques only. The coordinator uses this while it waits on a round
    /// barrier — picking up a long speculative task there would stall
    /// the whole round behind it.
    pub fn pop_round(&self, w: usize) -> Option<T> {
        if let Some(t) = plock(&self.locals[w]).pop_back() {
            return Some(t);
        }
        let n = self.locals.len();
        for step in 1..n {
            let victim = (w + step) % n;
            if let Some(t) = plock(&self.locals[victim]).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// The current push epoch; snapshot it *before* a failed
    /// [`StealQueues::pop`] so [`StealQueues::wait`] cannot miss a push
    /// that raced in between.
    pub fn epoch(&self) -> u64 {
        *plock(&self.gate)
    }

    /// Parks until the epoch moves past `seen` or the pool closes.
    /// Returns `false` when closed (the worker should exit).
    pub fn wait(&self, seen: u64) -> bool {
        let mut g = plock(&self.gate);
        loop {
            if !self.open.load(Ordering::Acquire) {
                return false;
            }
            if *g != seen {
                return true;
            }
            g = self
                .bell
                .wait(g)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the pool: wakes every parked worker to exit. Queued tasks
    /// may remain; callers only close between rounds, when the queues
    /// are drained.
    pub fn close(&self) {
        self.open.store(false, Ordering::Release);
        self.ring();
    }

    /// Tasks taken from a sibling's deque rather than one's own or the
    /// injector.
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    fn ring(&self) {
        *plock(&self.gate) += 1;
        self.bell.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_slot_is_a_fifo_through_the_injector() {
        let q = StealQueues::new(1);
        q.push(1);
        q.push(2);
        q.push_local(0, 3);
        // Own deque beats the injector; within the injector, FIFO.
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn pop_round_skips_the_injector() {
        let q = StealQueues::new(2);
        q.push(10);
        q.push_local(1, 20);
        // Round pops see worker deques (own or stolen) but never the
        // injector's speculative work.
        assert_eq!(q.pop_round(0), Some(20));
        assert_eq!(q.pop_round(0), None);
        assert_eq!(q.pop(0), Some(10));
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_sibling() {
        let q = StealQueues::new(3);
        for i in 0..6 {
            q.push_local(0, i);
        }
        // Worker 1 has nothing of its own: it must steal the *oldest*
        // items of worker 0.
        assert_eq!(q.pop(1), Some(0));
        assert_eq!(q.pop(2), Some(1));
        assert_eq!(q.steals(), 2);
        // Worker 0 still drains its own deque newest-first.
        assert_eq!(q.pop(0), Some(5));
    }

    #[test]
    fn close_wakes_parked_workers() {
        let q = StealQueues::<usize>::new(2);
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let e = q.epoch();
                assert!(q.pop(1).is_none());
                q.wait(e)
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert!(!h.join().unwrap(), "close must report not-open");
        });
    }

    #[test]
    fn concurrent_workers_drain_everything_exactly_once() {
        const TASKS: usize = 400;
        const WORKERS: usize = 4;
        let q = StealQueues::new(WORKERS);
        let done = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 1..WORKERS {
                let (q, done, sum) = (&q, &done, &sum);
                s.spawn(move || loop {
                    let e = q.epoch();
                    if let Some(t) = q.pop(w) {
                        sum.fetch_add(t, Ordering::Relaxed);
                        done.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if !q.wait(e) {
                        break;
                    }
                });
            }
            // Skewed seeding: everything lands on slot 1, so slots 2..
            // can only make progress by stealing.
            for t in 0..TASKS {
                q.push_local(1, t);
            }
            // Coordinator (slot 0) participates too.
            while done.load(Ordering::Relaxed) < TASKS {
                if let Some(t) = q.pop(0) {
                    sum.fetch_add(t, Ordering::Relaxed);
                    done.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        assert_eq!(done.load(Ordering::Relaxed), TASKS);
        assert_eq!(sum.load(Ordering::Relaxed), TASKS * (TASKS - 1) / 2);
    }
}
