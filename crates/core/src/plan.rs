//! Planning pass: which leaf χ variables are needed?
//!
//! Before building any BDDs, the backward recursion is traversed
//! symbolically to enumerate every `(primary input, value, time)` triple
//! the χ construction will request — the `t_1 < … < t_{p_x}` (value 1)
//! and `t'_1 < … < t'_{q_x}` (value 0) lists of §4.

use std::collections::BTreeSet;

use xrta_bdd::FxHashSet;
use xrta_network::{Network, NodeId};
use xrta_timing::{DelayModel, Time};

/// The set of leaf χ time points per primary input, per value.
#[derive(Clone, Debug, Default)]
pub struct LeafTimes {
    /// Sorted times at which `χ_{x,1}` is referenced.
    pub value1: Vec<Time>,
    /// Sorted times at which `χ_{x,0}` is referenced.
    pub value0: Vec<Time>,
}

impl LeafTimes {
    /// The times for one value.
    pub fn for_value(&self, value: bool) -> &[Time] {
        if value {
            &self.value1
        } else {
            &self.value0
        }
    }

    /// Union of both value lists, sorted and deduplicated.
    pub fn merged(&self) -> Vec<Time> {
        let mut set: BTreeSet<Time> = self.value1.iter().copied().collect();
        set.extend(self.value0.iter().copied());
        set.into_iter().collect()
    }
}

/// The full leaf plan: per primary input (aligned with `net.inputs()`),
/// which `(value, time)` leaves the recursion will touch.
#[derive(Clone, Debug)]
pub struct LeafPlan {
    /// Per-input leaf time lists.
    pub per_input: Vec<LeafTimes>,
}

impl LeafPlan {
    /// Total number of leaf variables (`Σ (p_x + q_x)`).
    pub fn leaf_count(&self) -> usize {
        self.per_input
            .iter()
            .map(|lt| lt.value1.len() + lt.value0.len())
            .sum()
    }

    /// Total number of leaf variables when values are merged
    /// (value-independent schemes).
    pub fn merged_leaf_count(&self) -> usize {
        self.per_input.iter().map(|lt| lt.merged().len()).sum()
    }
}

/// Enumerates the leaf χ variables needed to express the stability of
/// each primary output at its required time (aligned with
/// `net.outputs()`).
///
/// `is_leaf_input` selects which primary inputs get *unknown* leaves;
/// inputs where it returns `false` are treated as known-arrival inputs
/// (§5.2: the `X` inputs of `N_FO` keep their arrival times and need no
/// variables) and are not planned.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn plan_leaves<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    mut is_leaf_input: impl FnMut(usize) -> bool,
) -> LeafPlan {
    assert_eq!(output_required.len(), net.outputs().len());
    let mut input_pos = vec![None; net.node_count()];
    for (i, &id) in net.inputs().iter().enumerate() {
        input_pos[id.index()] = Some(i);
    }
    let delays: Vec<i64> = net
        .node_ids()
        .map(|id| {
            if net.node(id).is_input() {
                0
            } else {
                model.delay(net, id)
            }
        })
        .collect();

    let mut sets: Vec<(BTreeSet<Time>, BTreeSet<Time>)> =
        vec![(BTreeSet::new(), BTreeSet::new()); net.inputs().len()];
    let mut visited: FxHashSet<(u32, bool, Time)> = FxHashSet::default();
    let mut stack: Vec<(NodeId, bool, Time)> = Vec::new();
    for (i, &z) in net.outputs().iter().enumerate() {
        for v in [true, false] {
            stack.push((z, v, output_required[i]));
        }
    }
    while let Some((node, value, t)) = stack.pop() {
        if !visited.insert((node.index() as u32, value, t)) {
            continue;
        }
        if let Some(pos) = input_pos[node.index()] {
            if is_leaf_input(pos) {
                if value {
                    sets[pos].0.insert(t);
                } else {
                    sets[pos].1.insert(t);
                }
            }
            continue;
        }
        let n = net.node(node);
        let primes = if value {
            n.primes()
        } else {
            n.primes_of_complement()
        };
        let t_in = t - delays[node.index()];
        for cube in primes {
            for (i, &fanin) in n.fanins.iter().enumerate() {
                let bit = 1u32 << i;
                if cube.pos & bit != 0 {
                    stack.push((fanin, true, t_in));
                } else if cube.neg & bit != 0 {
                    stack.push((fanin, false, t_in));
                }
            }
        }
    }

    LeafPlan {
        per_input: sets
            .into_iter()
            .map(|(v1, v0)| LeafTimes {
                value1: v1.into_iter().collect(),
                value0: v0.into_iter().collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    /// The paper's Figure 4: z = AND(buf(x1), x2, buf(x2)) with unit
    /// delays and req(z) = 2. The χ functions are
    /// `χ²_{z,1} = χ⁰_{x1,1}·χ⁰_{x2,1}·χ¹_{x2,1}` and
    /// `χ²_{z,0} = χ⁰_{x1,0} + χ⁰_{x2,0} + χ¹_{x2,0}`, i.e. six leaf
    /// variables: x1 at time 0 (both values), x2 at times 0 and 1 (both
    /// values).
    #[test]
    fn fig4_plan_matches_paper() {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        assert_eq!(plan.per_input[0].value1, vec![Time::new(0)]);
        assert_eq!(plan.per_input[0].value0, vec![Time::new(0)]);
        assert_eq!(plan.per_input[1].value1, vec![Time::new(0), Time::new(1)]);
        assert_eq!(plan.per_input[1].value0, vec![Time::new(0), Time::new(1)]);
        assert_eq!(plan.leaf_count(), 6);
    }

    /// Reconvergent fanout produces multiple time points per input.
    #[test]
    fn reconvergence_gives_multiple_times() {
        let mut net = Network::new("rc");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let buf = net.add_gate("buf", GateKind::Buf, &[b]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[b, buf, a]).unwrap();
        net.mark_output(z);
        let _ = a;
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(2)], |_| true);
        // b reaches z directly (t=1) and through the buffer (t=0).
        assert_eq!(plan.per_input[1].value1, vec![Time::new(0), Time::new(1)]);
        assert_eq!(plan.per_input[1].merged(), vec![Time::new(0), Time::new(1)]);
        assert_eq!(plan.per_input[0].value1, vec![Time::new(1)]);
    }

    #[test]
    fn excluded_inputs_not_planned() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let z = net.add_gate("z", GateKind::Or, &[a, b]).unwrap();
        net.mark_output(z);
        let plan = plan_leaves(&net, &UnitDelay, &[Time::ZERO], |pos| pos == 1);
        assert!(plan.per_input[0].value1.is_empty());
        assert!(plan.per_input[0].value0.is_empty());
        assert_eq!(plan.per_input[1].value1.len(), 1);
        assert_eq!(plan.merged_leaf_count(), 1);
    }

    #[test]
    fn xor_requests_both_polarities() {
        let mut net = Network::new("x");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let z = net.add_gate("z", GateKind::Xor, &[a, b]).unwrap();
        net.mark_output(z);
        let plan = plan_leaves(&net, &UnitDelay, &[Time::new(1)], |_| true);
        for lt in &plan.per_input {
            assert_eq!(lt.value1, vec![Time::new(0)]);
            assert_eq!(lt.value0, vec![Time::new(0)]);
        }
    }
}
