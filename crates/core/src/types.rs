//! Result types shared by the exact and approximate analyses.

use std::fmt;

use xrta_timing::Time;

/// Required deadlines for one primary input, split by settled value
/// (the paper distinguishes the time by which a signal must settle *to
/// 1* from the time to settle *to 0*).
///
/// `Time::INF` means "never required" — the signal may arrive arbitrarily
/// late (or not at all) without violating the output required times.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ValueTimes {
    /// Deadline for settling to 1.
    pub value1: Time,
    /// Deadline for settling to 0.
    pub value0: Time,
}

impl ValueTimes {
    /// Both values share one deadline.
    pub fn uniform(t: Time) -> Self {
        ValueTimes {
            value1: t,
            value0: t,
        }
    }

    /// The stricter (earlier) of the two deadlines.
    pub fn earliest(self) -> Time {
        self.value1.min(self.value0)
    }

    /// The looser (later) of the two deadlines.
    pub fn latest(self) -> Time {
        self.value1.max(self.value0)
    }

    /// The deadline for settling to `value`.
    pub fn for_value(self, value: bool) -> Time {
        if value {
            self.value1
        } else {
            self.value0
        }
    }
}

impl fmt::Display for ValueTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.value1 == self.value0 {
            write!(f, "{}", self.value1)
        } else {
            write!(f, "1@{}/0@{}", self.value1, self.value0)
        }
    }
}

/// One *maximal* (latest) required-time condition: a deadline pair per
/// primary input. Several incomparable conditions can coexist (§4.1:
/// "there may be more than one latest required time").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequiredTimeTuple {
    /// Per-input deadlines, aligned with `net.inputs()`.
    pub per_input: Vec<ValueTimes>,
}

impl RequiredTimeTuple {
    /// Uniform tuple from a single per-input deadline list.
    pub fn uniform(times: &[Time]) -> Self {
        RequiredTimeTuple {
            per_input: times.iter().map(|&t| ValueTimes::uniform(t)).collect(),
        }
    }

    /// Is every deadline of `self` at least as late as in `other`
    /// (pointwise looser-or-equal)?
    pub fn dominates(&self, other: &RequiredTimeTuple) -> bool {
        self.per_input.len() == other.per_input.len()
            && self
                .per_input
                .iter()
                .zip(&other.per_input)
                .all(|(a, b)| a.value1 >= b.value1 && a.value0 >= b.value0)
    }

    /// Is some deadline strictly later than in `other` while none is
    /// earlier (strictly looser)?
    pub fn strictly_looser_than(&self, other: &RequiredTimeTuple) -> bool {
        self.dominates(other) && self != other
    }

    /// Projects the tuple onto one input minterm: per input, the
    /// deadline of the value it actually settles to under `x` (the
    /// other value's deadline is vacuous there). This is the quantity
    /// the paper tabulates per minterm in §4.1, and what differential
    /// comparisons between the rungs operate on.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.per_input.len()`.
    pub fn active_projection(&self, x: &[bool]) -> Vec<Time> {
        assert_eq!(x.len(), self.per_input.len());
        self.per_input
            .iter()
            .zip(x)
            .map(|(vt, &v)| vt.for_value(v))
            .collect()
    }
}

impl fmt::Display for RequiredTimeTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, vt) in self.per_input.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{vt}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_extremes() {
        let vt = ValueTimes::uniform(Time::new(3));
        assert_eq!(vt.earliest(), Time::new(3));
        assert_eq!(vt.latest(), Time::new(3));
        let vt = ValueTimes {
            value1: Time::new(1),
            value0: Time::INF,
        };
        assert_eq!(vt.earliest(), Time::new(1));
        assert_eq!(vt.latest(), Time::INF);
    }

    #[test]
    fn dominance() {
        let base = RequiredTimeTuple::uniform(&[Time::ZERO, Time::ZERO]);
        let looser = RequiredTimeTuple::uniform(&[Time::ZERO, Time::new(1)]);
        assert!(looser.dominates(&base));
        assert!(looser.strictly_looser_than(&base));
        assert!(!base.strictly_looser_than(&base));
        let incomparable = RequiredTimeTuple::uniform(&[Time::new(1), Time::new(-1)]);
        assert!(!incomparable.dominates(&base));
        assert!(!base.dominates(&incomparable));
    }

    #[test]
    fn display_forms() {
        let vt = ValueTimes {
            value1: Time::new(2),
            value0: Time::INF,
        };
        assert_eq!(vt.to_string(), "1@2/0@∞");
        let t = RequiredTimeTuple::uniform(&[Time::ZERO, Time::INF]);
        assert_eq!(t.to_string(), "(0, ∞)");
    }
}
