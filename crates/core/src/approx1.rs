//! Approximate approach 1 (§4.2): the parametric α/β formulation.
//!
//! Ordering chains are encoded structurally with fresh 0-1 parameters
//! (`χ_{x,1}^{t_p} = x·α_1`, …); universally quantifying the inputs
//! yields `F(α, β)`, a **monotone increasing** function whose primes are
//! exactly the latest required-time conditions (Theorem 1).

use xrta_bdd::{Bdd, Ref, Var};
use xrta_chi::ChiBddEngine;
use xrta_network::{GlobalBdds, Network};
use xrta_timing::{required_times, DelayModel, Time};

use crate::governor::{AnalysisError, Budget};
use crate::leaves::{LeafMode, ParamVarKey, PlannedLeaves};
use crate::plan::plan_leaves;
use crate::types::RequiredTimeTuple;

/// Options for the parametric analysis.
#[derive(Clone, Copy, Debug)]
pub struct Approx1Options {
    /// BDD node limit (`memory out` when exceeded).
    pub node_limit: usize,
    /// Merge the α and β chains per input (footnote 6: a more aggressive
    /// approximation that halves the parameter count but cannot
    /// distinguish rise from fall requirements).
    pub value_independent: bool,
    /// Sift the BDD after construction.
    pub reorder: bool,
    /// Cap on the number of primes enumerated.
    pub max_conditions: usize,
}

impl Default for Approx1Options {
    fn default() -> Self {
        Approx1Options {
            node_limit: 1 << 22,
            value_independent: false,
            reorder: false,
            max_conditions: 64,
        }
    }
}

/// Output of the parametric analysis.
pub struct Approx1Analysis {
    /// The BDD manager.
    pub bdd: Bdd,
    /// `F(α, β)`: every satisfying assignment is a safe required-time
    /// condition; monotone increasing.
    pub f: Ref,
    /// Parameter variables with their identities.
    pub param_vars: Vec<(ParamVarKey, Var)>,
    /// The primes of `F` (each a set of parameters forced to 1).
    pub primes: Vec<Vec<Var>>,
    /// The latest required-time conditions, one per prime.
    pub conditions: Vec<RequiredTimeTuple>,
    /// Topological required times at the inputs (`r⊥`).
    pub topo_required: Vec<Time>,
}

impl Approx1Analysis {
    /// Is some condition strictly looser than topological analysis?
    /// A prime that omits any parameter leaves some leaf at a later (or
    /// never) deadline — the `*` of the paper's Table 1.
    pub fn has_nontrivial_requirement(&self) -> bool {
        let total = self.param_vars.len();
        self.primes.iter().any(|p| p.len() < total)
    }
}

/// Runs the parametric analysis of §4.2.
///
/// # Errors
///
/// Returns [`AnalysisError::Capacity`] when the BDD node limit is
/// exceeded.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx1_required_times<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: Approx1Options,
) -> Result<Approx1Analysis, AnalysisError> {
    approx1_required_times_governed(net, model, output_required, options, &Budget::unlimited())
}

/// Budget-governed form of [`approx1_required_times`]: honours the
/// budget's deadline, cancel flag and node limit on top of the options.
///
/// # Panics
///
/// Panics if `output_required.len() != net.outputs().len()`.
pub fn approx1_required_times_governed<D: DelayModel>(
    net: &Network,
    model: &D,
    output_required: &[Time],
    options: Approx1Options,
    budget: &Budget,
) -> Result<Approx1Analysis, AnalysisError> {
    assert_eq!(output_required.len(), net.outputs().len());
    let mut bdd = Bdd::with_node_limit(budget.effective_node_limit(options.node_limit));
    bdd.set_deadline(budget.deadline());
    bdd.set_cancel_flag(Some(budget.cancel_flag()));
    bdd.set_mem_limit(budget.mem_limit());
    let plan = plan_leaves(net, model, output_required, |_| true);
    let mode = LeafMode::Parametric {
        value_independent: options.value_independent,
    };
    let leaves = PlannedLeaves::new(&mut bdd, plan, vec![mode; net.inputs().len()]);
    let x_vars = leaves.x_vars.clone();
    let globals = GlobalBdds::build_with_vars(&mut bdd, net, &x_vars)?;

    let mut engine = ChiBddEngine::new(net, model, leaves);
    let mut constraint = Ref::TRUE;
    for (i, &z) in net.outputs().iter().enumerate() {
        let t = output_required[i];
        let chi1 = engine.chi(&mut bdd, net, z, true, t)?;
        let chi0 = engine.chi(&mut bdd, net, z, false, t)?;
        let gz = globals.of(z);
        let ngz = bdd.try_not(gz)?;
        let c1 = {
            let x = bdd.try_xor(chi1, gz)?;
            bdd.try_not(x)?
        };
        let c0 = {
            let x = bdd.try_xor(chi0, ngz)?;
            bdd.try_not(x)?
        };
        constraint = bdd.try_and(constraint, c1)?;
        constraint = bdd.try_and(constraint, c0)?;
    }
    let leaves = engine.leaves;
    let mut f = bdd.try_forall(constraint, &x_vars)?;

    if options.reorder {
        let roots = bdd.try_reduce(&[f])?;
        f = roots[0];
    }

    // `F(α,β)` exists: disarm the governor so prime enumeration (which
    // uses the panicking BDD operations) runs to completion instead of
    // tripping over a deadline that passes after the hard work is done.
    bdd.set_deadline(None);
    bdd.set_cancel_flag(None);
    bdd.set_mem_limit(None);

    let params = leaves.param_var_list();
    let mut primes = bdd.monotone_primes(f, &params);
    primes.truncate(options.max_conditions);
    let conditions: Vec<RequiredTimeTuple> =
        primes.iter().map(|p| leaves.interpret_prime(p)).collect();

    let topo_net_required = required_times(net, model, output_required);
    let topo_required = net
        .inputs()
        .iter()
        .map(|i| topo_net_required[i.index()])
        .collect();

    Ok(Approx1Analysis {
        bdd,
        f,
        param_vars: leaves.param_vars.clone(),
        primes,
        conditions,
        topo_required,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_network::GateKind;
    use xrta_timing::UnitDelay;

    fn fig4() -> Network {
        let mut net = Network::new("fig4");
        let x1 = net.add_input("x1").unwrap();
        let x2 = net.add_input("x2").unwrap();
        let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).unwrap();
        let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).unwrap();
        let z = net.add_gate("z", GateKind::And, &[y1, x2, y2]).unwrap();
        net.mark_output(z);
        net
    }

    /// The paper computes F = α₁^{x1}·α₁^{x2}·α₂^{x2}·β₁^{x1}·β₁^{x2}
    /// — a single prime omitting β₂^{x2}: x1 required at 0 for both
    /// values; x2 required at 0 when settling to 1, at 1 when settling
    /// to 0.
    #[test]
    fn fig4_prime_matches_paper() {
        let a = approx1_required_times(
            &fig4(),
            &UnitDelay,
            &[Time::new(2)],
            Approx1Options::default(),
        )
        .unwrap();
        assert_eq!(a.param_vars.len(), 6);
        assert_eq!(a.primes.len(), 1, "unique prime");
        assert_eq!(a.primes[0].len(), 5, "β₂^{{x2}} omitted");
        let c = &a.conditions[0];
        assert_eq!(c.per_input[0].value1, Time::new(0));
        assert_eq!(c.per_input[0].value0, Time::new(0));
        assert_eq!(c.per_input[1].value1, Time::new(0));
        assert_eq!(c.per_input[1].value0, Time::new(1));
        assert!(a.has_nontrivial_requirement());
    }

    #[test]
    fn fig4_value_independent_loses_precision() {
        let a = approx1_required_times(
            &fig4(),
            &UnitDelay,
            &[Time::new(2)],
            Approx1Options {
                value_independent: true,
                ..Approx1Options::default()
            },
        )
        .unwrap();
        // Merged chains: x1 has 1 parameter, x2 has 2 → 3 total.
        assert_eq!(a.param_vars.len(), 3);
        // The value-0-only looseness of x2 vanishes: all parameters are
        // needed, i.e. topological times (trivial).
        assert!(!a.has_nontrivial_requirement());
        assert_eq!(a.conditions.len(), 1);
        let c = &a.conditions[0];
        assert_eq!(c.per_input[1].value1, Time::new(0));
        assert_eq!(c.per_input[1].value0, Time::new(0));
    }

    #[test]
    fn parity_is_trivial() {
        let mut net = Network::new("parity");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let t = net.add_gate("t", GateKind::Xor, &[a, b]).unwrap();
        let z = net.add_gate("z", GateKind::Xor, &[t, c]).unwrap();
        net.mark_output(z);
        let an =
            approx1_required_times(&net, &UnitDelay, &[Time::new(2)], Approx1Options::default())
                .unwrap();
        assert_eq!(an.primes.len(), 1);
        assert!(!an.has_nontrivial_requirement());
    }

    #[test]
    fn conditions_are_safe_and_sound() {
        // Every reported condition, used as arrival times, must keep the
        // outputs stable by their required times (validated with the
        // independent functional-timing oracle).
        use xrta_chi::{EngineKind, FunctionalTiming};
        let net = fig4();
        let a =
            approx1_required_times(&net, &UnitDelay, &[Time::new(2)], Approx1Options::default())
                .unwrap();
        for cond in &a.conditions {
            // Use the stricter of the two value deadlines as a plain
            // arrival time (a conservative reading of the condition).
            let arrivals: Vec<Time> = cond.per_input.iter().map(|vt| vt.earliest()).collect();
            let ft = FunctionalTiming::new(&net, &UnitDelay, arrivals, EngineKind::Bdd);
            assert!(ft.meets(&[Time::new(2)]), "condition {cond} unsafe");
        }
    }

    #[test]
    fn memory_out_reported() {
        let r = approx1_required_times(
            &fig4(),
            &UnitDelay,
            &[Time::new(2)],
            Approx1Options {
                node_limit: 12,
                ..Approx1Options::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn multi_output_conjunction() {
        // Two outputs share an input; conditions must respect both.
        let mut net = Network::new("mo");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let z1 = net.add_gate("z1", GateKind::And, &[a, b]).unwrap();
        let z2 = net.add_gate("z2", GateKind::Or, &[a, b]).unwrap();
        net.mark_output(z1);
        net.mark_output(z2);
        let an = approx1_required_times(
            &net,
            &UnitDelay,
            &[Time::new(1), Time::new(1)],
            Approx1Options::default(),
        )
        .unwrap();
        // AND forces value-1 stability of both inputs by 0; OR forces
        // value-0 stability of both by 0: everything needed → trivial.
        assert!(!an.has_nontrivial_requirement());
    }
}
