//! The paper's worked examples and other tiny reference circuits.

use xrta_network::{parse_bench, GateKind, Network, NodeId};

/// The paper's Figure 4 circuit: `z = AND(buf(x1), x2, buf(x2))` with
/// unit delays intended, `req(z) = 2`.
///
/// Topological analysis requires both inputs at time 0; the exact
/// relation relaxes this to the table of §4.1 (e.g. for `x1x2 = 00`,
/// either `x1` by 0 or `x2` by 1 suffices).
pub fn fig4() -> Network {
    let mut net = Network::new("fig4");
    let x1 = net.add_input("x1").expect("fresh network");
    let x2 = net.add_input("x2").expect("fresh network");
    let y1 = net.add_gate("y1", GateKind::Buf, &[x1]).expect("fresh");
    let y2 = net.add_gate("y2", GateKind::Buf, &[x2]).expect("fresh");
    let z = net
        .add_gate("z", GateKind::And, &[y1, x2, y2])
        .expect("fresh");
    net.mark_output(z);
    net
}

/// The paper's Figure 6 fanin network `N_FI` (up to gate-level
/// isomorphism): `a = x2·x3`, `u1 = x1·a`, `u2 = x1 + a` with unit
/// delays and zero arrivals. This realizes the paper's equations
/// exactly:
///
/// * `χ̃¹_{u1} = ¬x1`, `χ̃²_{u1} = 1` — u1 settles at 1 when `x1 = 0`,
///   else at 2;
/// * `χ̃¹_{u2} = x1`,  `χ̃²_{u2} = 1` — mirrored;
///
/// and the folded arrival table, including the unreachable vector
/// `u1u2 = 10` (the satisfiability don't-care row):
///
/// ```text
/// u1u2 | arrivals            u1u2 | arrivals
/// 00   | {(1,2)}             10   | {(∞,∞)}
/// 01   | {(1,2),(2,1)}       11   | {(2,1)}
/// ```
///
/// Returns the network and the `[u1, u2]` node ids.
pub fn fig6() -> (Network, Vec<NodeId>) {
    let mut net = Network::new("fig6");
    let x1 = net.add_input("x1").expect("fresh network");
    let x2 = net.add_input("x2").expect("fresh network");
    let x3 = net.add_input("x3").expect("fresh network");
    let a = net.add_gate("a", GateKind::And, &[x2, x3]).expect("fresh");
    let u1 = net.add_gate("u1", GateKind::And, &[x1, a]).expect("fresh");
    let u2 = net.add_gate("u2", GateKind::Or, &[x1, a]).expect("fresh");
    net.mark_output(u1);
    net.mark_output(u2);
    (net, vec![u1, u2])
}

/// The canonical minimal false-path circuit (two MUXes sharing a
/// select): topological delay 4, true delay 2.
pub fn two_mux_bypass() -> Network {
    let mut net = Network::new("two_mux_bypass");
    let s = net.add_input("s").expect("fresh network");
    let x = net.add_input("x").expect("fresh network");
    let c = net.add_input("c").expect("fresh network");
    let b1 = net.add_gate("b1", GateKind::Buf, &[x]).expect("fresh");
    let b2 = net.add_gate("b2", GateKind::Buf, &[b1]).expect("fresh");
    let m1 = net
        .add_gate("m1", GateKind::Mux, &[s, x, b2])
        .expect("fresh");
    let z = net
        .add_gate("z", GateKind::Mux, &[s, m1, c])
        .expect("fresh");
    net.mark_output(z);
    net
}

/// ISCAS-85 C17, the smallest benchmark of the suite (6 NAND gates),
/// embedded verbatim in `.bench` format.
pub fn c17() -> Network {
    parse_bench(
        "# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
",
    )
    .expect("embedded netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_truth_table() {
        let net = fig4();
        for m in 0..4u32 {
            let x1 = m & 1 == 1;
            let x2 = m & 2 == 2;
            assert_eq!(net.eval(&[x1, x2]), vec![x1 && x2]);
        }
    }

    #[test]
    fn fig6_functions() {
        let (net, _) = fig6();
        for m in 0..8u32 {
            let ins = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            let out = net.eval(&ins);
            let a = ins[1] && ins[2];
            assert_eq!(out, vec![ins[0] && a, ins[0] || a]);
        }
    }

    #[test]
    fn c17_gate_count() {
        let net = c17();
        assert_eq!(net.inputs().len(), 5);
        assert_eq!(net.outputs().len(), 2);
        assert_eq!(net.gate_count(), 6);
    }

    #[test]
    fn two_mux_bypass_functions() {
        let net = two_mux_bypass();
        for m in 0..8u32 {
            let ins = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            let (s, x, c) = (ins[0], ins[1], ins[2]);
            // s=0: z = m1 = x; s=1: z = c.
            let expect = if s { c } else { x };
            assert_eq!(net.eval(&ins), vec![expect]);
        }
    }
}
