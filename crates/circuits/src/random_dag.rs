//! Seeded random DAG circuits with tunable reconvergence.

use xrta_network::{GateKind, Network, NetworkError, NodeId};
use xrta_rng::Rng;

/// Parameters for [`random_circuit`].
#[derive(Clone, Copy, Debug)]
pub struct RandomCircuitSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Number of primary outputs (taken from the last gates).
    pub outputs: usize,
    /// Maximum gate fanin (≥ 2).
    pub max_fanin: usize,
    /// Locality bias: probability of picking recent nodes as fanins
    /// (higher = deeper, more reconvergent circuits). 0..=100.
    pub locality: u32,
    /// RNG seed (fully deterministic output).
    pub seed: u64,
}

impl Default for RandomCircuitSpec {
    fn default() -> Self {
        RandomCircuitSpec {
            inputs: 16,
            gates: 100,
            outputs: 8,
            max_fanin: 3,
            locality: 60,
            seed: 0xDA11A5,
        }
    }
}

const GATE_POOL: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Mux,
];

/// Generates a deterministic pseudo-random combinational circuit.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if the spec is degenerate (no inputs, no gates, fewer gates
/// than outputs, or `max_fanin < 2`).
pub fn random_circuit(spec: RandomCircuitSpec) -> Result<Network, NetworkError> {
    assert!(spec.inputs > 0 && spec.gates > 0, "degenerate spec");
    assert!(spec.gates >= spec.outputs, "more outputs than gates");
    assert!(spec.max_fanin >= 2, "max_fanin must be at least 2");
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut net = Network::new(format!("rand_{:x}", spec.seed));
    let mut pool: Vec<NodeId> = (0..spec.inputs)
        .map(|i| net.add_input(format!("x{i}")))
        .collect::<Result<_, _>>()?;

    for g in 0..spec.gates {
        let kind = *rng.pick(&GATE_POOL);
        let arity = match kind {
            GateKind::Mux => 3,
            GateKind::Xor => 2,
            _ => rng.range(2, spec.max_fanin.max(2) + 1),
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            let pick = if rng.percent(spec.locality) && pool.len() > spec.inputs {
                // Recent node: biases towards depth.
                let lo = pool.len().saturating_sub(8);
                rng.range(lo, pool.len())
            } else {
                rng.range(0, pool.len())
            };
            fanins.push(pool[pick]);
        }
        // MUX with identical data inputs degenerates; nudge apart.
        if kind == GateKind::Mux && fanins[1] == fanins[2] {
            fanins[2] = pool[rng.range(0, pool.len())];
        }
        let id = net.add_gate(format!("g{g}"), kind, &fanins)?;
        pool.push(id);
    }
    for (k, &id) in pool.iter().rev().take(spec.outputs).enumerate() {
        let _ = k;
        net.mark_output(id);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let spec = RandomCircuitSpec::default();
        let a = random_circuit(spec).unwrap();
        let b = random_circuit(spec).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        let ins = vec![true; a.inputs().len()];
        assert_eq!(a.eval(&ins), b.eval(&ins));
        let c = random_circuit(RandomCircuitSpec { seed: 99, ..spec }).unwrap();
        // Different seed almost surely differs somewhere.
        let differs = (0..64u64).any(|m| {
            let ins: Vec<bool> = (0..a.inputs().len())
                .map(|i| (m >> (i % 64)) & 1 == 1)
                .collect();
            a.eval(&ins) != c.eval(&ins)
        });
        assert!(differs || a.node_count() != c.node_count());
    }

    #[test]
    fn respects_spec_sizes() {
        let spec = RandomCircuitSpec {
            inputs: 10,
            gates: 50,
            outputs: 5,
            ..RandomCircuitSpec::default()
        };
        let net = random_circuit(spec).unwrap();
        assert_eq!(net.inputs().len(), 10);
        assert_eq!(net.outputs().len(), 5);
        assert_eq!(net.gate_count(), 50);
    }

    #[test]
    fn evaluates_without_panic() {
        let net = random_circuit(RandomCircuitSpec::default()).unwrap();
        for m in 0..32u64 {
            let ins: Vec<bool> = (0..net.inputs().len())
                .map(|i| (m >> (i % 64)) & 1 == 1)
                .collect();
            let _ = net.eval(&ins);
        }
    }
}
