//! Surrogate benchmark suite for the paper's Tables 1 and 2.
//!
//! The MCNC i1–i10 and ISCAS-85 C432–C7552 netlists are not
//! redistributable here, so each table row is backed by a *surrogate*
//! circuit with the same primary-input/output counts and — crucially —
//! the same discriminating property: rows where the paper found
//! non-trivial required times get planted false-path structure
//! (shared-select bypass cells, the distilled carry-skip pattern); rows
//! reported trivial get pure parity/XOR blocks, which have no false
//! paths. See DESIGN.md §3 for the substitution argument.

use xrta_network::{GateKind, Network, NodeId};

/// What kind of required-time flexibility a surrogate's blocks plant.
///
/// The three §4 algorithms see different kinds of looseness:
///
/// * [`BlockStyle::Xor`] — parity blocks: no flexibility at all (every
///   path sensitizable); all three algorithms report trivial results.
/// * [`BlockStyle::Mux`] — balanced selectors: flexibility depends on
///   *other* inputs' values, visible only to the exact relation (§4.1).
/// * [`BlockStyle::Gated`] — the Figure-4 pattern: flexibility depends
///   on the signal's *own* settled value, visible to the α/β split of
///   approx 1 but not to the value-independent approx 2.
/// * [`BlockStyle::Bypass`] — shared-select bypass false paths:
///   uniformly loosenable deadlines, visible to every algorithm
///   including approx 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockStyle {
    /// Parity blocks (no false paths, no flexibility).
    Xor,
    /// Balanced MUX blocks (exact-only flexibility).
    Mux,
    /// Gated AND blocks (value-dependent flexibility, approx-1 visible).
    Gated,
    /// Bypass false-path blocks (uniform flexibility, approx-2 visible).
    Bypass,
}

/// One row of a reproduction table.
#[derive(Clone, Copy, Debug)]
pub struct SuiteRow {
    /// Circuit name as in the paper.
    pub name: &'static str,
    /// Primary input count (matches the paper).
    pub inputs: usize,
    /// Primary output count (matches the paper).
    pub outputs: usize,
    /// The flexibility style planted in the surrogate, chosen to match
    /// the paper's per-algorithm `*` pattern for this row.
    pub style: BlockStyle,
    /// Paper verdict for the scalable algorithm (approx 2 for Table 2;
    /// `*`-markers for Table 1), for EXPERIMENTS.md comparison.
    pub paper_nontrivial: bool,
}

impl SuiteRow {
    /// Builds the surrogate network.
    pub fn build(&self) -> Network {
        match self.name {
            // C6288 is a 16×16 array multiplier; ours is the real
            // structure (32 PI / 32 PO match exactly), whose carry-save
            // diagonals are the classic hard case.
            "C6288" => {
                let mut net = crate::mult::array_multiplier(16).expect("valid multiplier");
                net.set_name("C6288");
                net
            }
            // C3540 is an 8-bit ALU; the surrogate couples a carry-skip
            // core (deep, false-pathy) with gated side logic to reach
            // 50 PI / 22 PO.
            "C3540" => c3540_surrogate(),
            _ => block_circuit(self.name, self.inputs, self.outputs, self.style),
        }
    }
}

/// ALU-like surrogate for C3540: a 16-bit carry-skip adder (33 PI,
/// 17 PO) plus 17 extra inputs feeding 5 bypass/gated blocks.
fn c3540_surrogate() -> Network {
    let mut net = crate::adders::carry_skip_adder(16, 4).expect("valid adder");
    net.set_name("C3540");
    let extra: Vec<NodeId> = (0..17)
        .map(|i| net.add_input(format!("e{i}")).expect("fresh"))
        .collect();
    for k in 0..5 {
        let win: Vec<NodeId> = (0..4).map(|j| extra[(k * 7 + j) % 17]).collect();
        let out = if k % 2 == 0 {
            bypass_block(&mut net, 100 + k, &win)
        } else {
            gated_block(&mut net, 100 + k, &win)
        };
        net.mark_output(out);
    }
    net
}

/// The MCNC rows of Table 1. Styles follow the paper's `*` pattern:
/// i1/i2/i9 star under approx 1 only (Figure-4-like, value-dependent);
/// i3 stars under exact only; i8/i10 star under approx 2 too (true
/// uniform false paths); i4–i7 are trivial everywhere.
pub fn mcnc_rows() -> Vec<SuiteRow> {
    vec![
        row("i1", 25, 16, BlockStyle::Gated, true),
        row("i2", 201, 1, BlockStyle::Gated, true),
        row("i3", 132, 6, BlockStyle::Mux, true),
        row("i4", 192, 6, BlockStyle::Xor, false),
        row("i5", 133, 66, BlockStyle::Xor, false),
        row("i6", 138, 67, BlockStyle::Xor, false),
        row("i7", 199, 67, BlockStyle::Xor, false),
        row("i8", 133, 81, BlockStyle::Bypass, true),
        row("i9", 88, 63, BlockStyle::Gated, true),
        row("i10", 257, 224, BlockStyle::Bypass, true),
    ]
}

/// The ISCAS-85 rows of Table 2 (approx 2 is value-independent, so
/// "Yes" rows need genuinely uniform false paths: bypass style).
pub fn iscas_rows() -> Vec<SuiteRow> {
    vec![
        row("C432", 36, 7, BlockStyle::Bypass, true),
        row("C499", 41, 32, BlockStyle::Xor, false),
        row("C880", 60, 26, BlockStyle::Xor, false),
        row("C1355", 41, 32, BlockStyle::Xor, false),
        row("C1908", 33, 25, BlockStyle::Bypass, true),
        row("C2670", 233, 140, BlockStyle::Bypass, true),
        row("C3540", 50, 22, BlockStyle::Bypass, true),
        row("C5315", 178, 123, BlockStyle::Bypass, true),
        row("C6288", 32, 32, BlockStyle::Bypass, true),
        row("C7552", 207, 108, BlockStyle::Bypass, true),
    ]
}

fn row(
    name: &'static str,
    inputs: usize,
    outputs: usize,
    style: BlockStyle,
    paper_nontrivial: bool,
) -> SuiteRow {
    SuiteRow {
        name,
        inputs,
        outputs,
        style,
        paper_nontrivial,
    }
}

/// Deterministic block-structured surrogate: `n_po` blocks, each reading
/// a window of the inputs, with the block logic set by `style` (see
/// [`BlockStyle`]). Every primary input feeds at least one block.
pub fn block_circuit(name: &str, n_pi: usize, n_po: usize, style: BlockStyle) -> Network {
    assert!(n_pi >= 3, "need at least 3 inputs");
    assert!(n_po >= 1);
    let mut net = Network::new(name.to_string());
    let pis: Vec<NodeId> = (0..n_pi)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();

    // Window geometry: cover all inputs across the blocks.
    let window = n_pi.div_ceil(n_po).clamp(3, 6);
    let step = if n_po == 1 {
        0
    } else {
        (n_pi.saturating_sub(window)).max(1) / (n_po - 1).max(1)
    };

    let mut outputs = Vec::with_capacity(n_po);
    for k in 0..n_po {
        let base = (k * step.max(1)) % n_pi;
        let win: Vec<NodeId> = (0..window).map(|j| pis[(base + j) % n_pi]).collect();
        let out = match style {
            BlockStyle::Xor => xor_block(&mut net, k, &win),
            BlockStyle::Mux => mux_block(&mut net, k, &win),
            BlockStyle::Gated => gated_block(&mut net, k, &win),
            // Bypass rows mix in gated blocks for variety; both styles
            // are approx-2-visible or stronger.
            BlockStyle::Bypass => {
                if k % 2 == 0 {
                    bypass_block(&mut net, k, &win)
                } else {
                    gated_block(&mut net, k, &win)
                }
            }
        };
        outputs.push(out);
    }

    // Blocks might miss some inputs when n_po·window < n_pi; fold the
    // stragglers into the first output with a final gate layer.
    let used = net.transitive_fanin(&outputs);
    let missing: Vec<NodeId> = pis.iter().copied().filter(|p| !used.contains(p)).collect();
    if !missing.is_empty() {
        // Combine stragglers into a tree and mix into output 0. OR
        // folding adds at most exact-level flexibility (no uniform or
        // value-dependent stars), XOR folding adds none.
        let fold_kind = if style == BlockStyle::Xor {
            GateKind::Xor
        } else {
            GateKind::Or
        };
        let mut level = missing;
        let mut idx = 0;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(
                        net.add_gate(format!("mix{idx}"), fold_kind, &[pair[0], pair[1]])
                            .expect("fresh"),
                    );
                    idx += 1;
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let extra = level[0];
        let combined = net
            .add_gate("fold0", fold_kind, &[outputs[0], extra])
            .expect("fresh");
        outputs[0] = combined;
    }

    for o in outputs {
        net.mark_output(o);
    }
    net
}

/// The distilled carry-skip cell: two MUXes sharing a select around a
/// slow branch — its long path is false.
fn bypass_block(net: &mut Network, k: usize, win: &[NodeId]) -> NodeId {
    let s = win[0];
    let d = win[1];
    let c = win[2];
    let mut slow = d;
    for j in 0..3 {
        slow = net
            .add_gate(format!("blk{k}_b{j}"), GateKind::Buf, &[slow])
            .expect("fresh");
    }
    let m1 = net
        .add_gate(format!("blk{k}_m1"), GateKind::Mux, &[s, d, slow])
        .expect("fresh");
    let mut z = net
        .add_gate(format!("blk{k}_m2"), GateKind::Mux, &[s, m1, c])
        .expect("fresh");
    // Mix in any remaining window inputs so the block depends on them.
    for (j, &w) in win.iter().enumerate().skip(3) {
        z = net
            .add_gate(format!("blk{k}_mix{j}"), GateKind::Or, &[z, w])
            .expect("fresh");
    }
    z
}

/// AND-OR logic with a gating input: moderate (value-dependent)
/// flexibility, like the paper's Figure 4.
fn gated_block(net: &mut Network, k: usize, win: &[NodeId]) -> NodeId {
    let gate_in = win[0];
    let y1 = net
        .add_gate(format!("gb{k}_y1"), GateKind::Buf, &[gate_in])
        .expect("fresh");
    let data = win[1];
    let y2 = net
        .add_gate(format!("gb{k}_y2"), GateKind::Buf, &[data])
        .expect("fresh");
    let mut z = net
        .add_gate(format!("gb{k}_and"), GateKind::And, &[y1, data, y2])
        .expect("fresh");
    for (j, &w) in win.iter().enumerate().skip(2) {
        z = net
            .add_gate(format!("gb{k}_or{j}"), GateKind::Or, &[z, w])
            .expect("fresh");
    }
    z
}

/// Balanced MUX selector: the unselected data input is unconstrained
/// for the minterms where the select points away — flexibility that only
/// the exact per-minterm relation can express (no value-uniform slack).
fn mux_block(net: &mut Network, k: usize, win: &[NodeId]) -> NodeId {
    let s = win[0];
    let a = net
        .add_gate(format!("mb{k}_a"), GateKind::Buf, &[win[1]])
        .expect("fresh");
    let b = net
        .add_gate(format!("mb{k}_b"), GateKind::Buf, &[win[2]])
        .expect("fresh");
    let mut z = net
        .add_gate(format!("mb{k}_m"), GateKind::Mux, &[s, a, b])
        .expect("fresh");
    for (j, &w) in win.iter().enumerate().skip(3) {
        z = net
            .add_gate(format!("mb{k}_or{j}"), GateKind::Or, &[z, w])
            .expect("fresh");
    }
    z
}

/// Pure XOR tree: no false paths, no required-time flexibility.
fn xor_block(net: &mut Network, k: usize, win: &[NodeId]) -> NodeId {
    let mut level = win.to_vec();
    let mut idx = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(
                    net.add_gate(format!("xb{k}_{idx}"), GateKind::Xor, &[pair[0], pair[1]])
                        .expect("fresh"),
                );
                idx += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_chi::{EngineKind, FunctionalTiming};
    use xrta_timing::{topological_delays, Time, UnitDelay};

    #[test]
    fn rows_match_paper_pi_po_counts() {
        for r in mcnc_rows().iter().chain(&iscas_rows()) {
            let net = r.build();
            assert_eq!(net.inputs().len(), r.inputs, "{} PI", r.name);
            assert_eq!(net.outputs().len(), r.outputs, "{} PO", r.name);
        }
    }

    #[test]
    fn every_input_reaches_some_output() {
        for r in mcnc_rows().iter().chain(&iscas_rows()) {
            let net = r.build();
            let cone = net.transitive_fanin(net.outputs());
            for &pi in net.inputs() {
                assert!(
                    cone.contains(&pi),
                    "{}: input {} unused",
                    r.name,
                    net.node(pi).name
                );
            }
        }
    }

    #[test]
    fn planted_rows_have_false_paths() {
        // Spot-check one planted and one unplanted row via true delay.
        let c432 = iscas_rows()[0].build();
        let worst = |net: &Network| {
            let topo = topological_delays(net, &UnitDelay);
            let out_idx = topo
                .iter()
                .enumerate()
                .max_by_key(|(_, t)| **t)
                .map(|(i, _)| i)
                .unwrap();
            let o = net.outputs()[out_idx];
            let ft = FunctionalTiming::new(
                net,
                &UnitDelay,
                vec![Time::ZERO; net.inputs().len()],
                EngineKind::Sat,
            );
            (ft.true_arrival(o), topo[out_idx])
        };
        let (true_t, topo_t) = worst(&c432);
        assert!(
            true_t < topo_t,
            "C432 surrogate: true {true_t} vs topo {topo_t}"
        );
        let c499 = iscas_rows()[1].build();
        let (true_t, topo_t) = worst(&c499);
        assert_eq!(true_t, topo_t, "C499 surrogate must be false-path-free");
    }

    #[test]
    fn deterministic_build() {
        let a = iscas_rows()[4].build();
        let b = iscas_rows()[4].build();
        assert_eq!(a.node_count(), b.node_count());
        let ins = vec![true; a.inputs().len()];
        assert_eq!(a.eval(&ins), b.eval(&ins));
    }
}
