//! Array multiplier generator (the structure of ISCAS-85's C6288).

use xrta_network::{GateKind, Network, NetworkError, NodeId};

/// Builds an `n × n` carry-save array multiplier `p = a · b`
/// (2n product bits). The diagonal carry chains create the massive
/// reconvergence that makes C6288 the classic hard case for exact
/// analyses — and a rich source of false paths.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> Result<Network, NetworkError> {
    assert!(n > 0);
    let mut net = Network::new(format!("mult{n}x{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;

    // Partial products.
    let mut pp = vec![vec![None; n]; n];
    for i in 0..n {
        for j in 0..n {
            pp[i][j] = Some(net.add_gate(format!("pp{i}_{j}"), GateKind::And, &[a[i], b[j]])?);
        }
    }

    // Row-by-row carry-save reduction with a full adder per cell.
    let full_adder = |net: &mut Network,
                      name: String,
                      x: NodeId,
                      y: NodeId,
                      z: NodeId|
     -> Result<(NodeId, NodeId), NetworkError> {
        let t = net.add_gate(format!("{name}_t"), GateKind::Xor, &[x, y])?;
        let s = net.add_gate(format!("{name}_s"), GateKind::Xor, &[t, z])?;
        let c1 = net.add_gate(format!("{name}_c1"), GateKind::And, &[x, y])?;
        let c2 = net.add_gate(format!("{name}_c2"), GateKind::And, &[t, z])?;
        let c = net.add_gate(format!("{name}_c"), GateKind::Or, &[c1, c2])?;
        Ok((s, c))
    };

    // sums[k]: current accumulated bit of weight k.
    let mut sums: Vec<Option<NodeId>> = vec![None; 2 * n];
    for (i, row) in pp.iter().enumerate() {
        let mut carry: Option<NodeId> = None;
        for (j, &cell) in row.iter().enumerate() {
            let k = i + j;
            let cell = cell.expect("filled");
            let acc = sums[k];
            match (acc, carry) {
                (None, None) => {
                    sums[k] = Some(cell);
                }
                (Some(s0), None) => {
                    let half_s = net.add_gate(format!("hs{i}_{j}"), GateKind::Xor, &[s0, cell])?;
                    let half_c = net.add_gate(format!("hc{i}_{j}"), GateKind::And, &[s0, cell])?;
                    sums[k] = Some(half_s);
                    carry = Some(half_c);
                }
                (None, Some(c0)) => {
                    let half_s = net.add_gate(format!("hs{i}_{j}"), GateKind::Xor, &[c0, cell])?;
                    let half_c = net.add_gate(format!("hc{i}_{j}"), GateKind::And, &[c0, cell])?;
                    sums[k] = Some(half_s);
                    carry = Some(half_c);
                }
                (Some(s0), Some(c0)) => {
                    let (s, c) = full_adder(&mut net, format!("fa{i}_{j}"), s0, c0, cell)?;
                    sums[k] = Some(s);
                    carry = Some(c);
                }
            }
        }
        // Propagate the trailing carry into the next weight.
        let mut k = i + n;
        while let Some(c0) = carry {
            match sums[k] {
                None => {
                    sums[k] = Some(c0);
                    carry = None;
                }
                Some(s0) => {
                    let s = net.add_gate(format!("ps{i}_{k}"), GateKind::Xor, &[s0, c0])?;
                    let c = net.add_gate(format!("pc{i}_{k}"), GateKind::And, &[s0, c0])?;
                    sums[k] = Some(s);
                    carry = Some(c);
                    k += 1;
                }
            }
        }
    }

    for (k, s) in sums.iter().enumerate() {
        match s {
            Some(id) => net.mark_output(*id),
            None => {
                let zero = net.add_gate(format!("z{k}"), GateKind::Const0, &[])?;
                net.mark_output(zero);
            }
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_multipliers_correct() {
        for n in [1usize, 2, 3, 4] {
            let net = array_multiplier(n).unwrap();
            assert_eq!(net.outputs().len(), 2 * n);
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    let mut ins = Vec::new();
                    for i in 0..n {
                        ins.push((a >> i) & 1 == 1);
                    }
                    for i in 0..n {
                        ins.push((b >> i) & 1 == 1);
                    }
                    let out = net.eval(&ins);
                    let p = a * b;
                    for (k, &bit) in out.iter().enumerate() {
                        assert_eq!(bit, (p >> k) & 1 == 1, "{a}*{b} bit {k} (n={n})");
                    }
                }
            }
        }
    }
}
