//! Bypass chains, parity trees and comparator-style generators.

use xrta_network::{GateKind, Network, NetworkError, NodeId};

/// A cascade of `stages` bypassable delay blocks: each stage is a
/// `depth`-deep buffer chain with a MUX that can skip it. All stages
/// share one select input per stage; the all-skip and all-ripple
/// configurations cannot be sensitized simultaneously, producing long
/// false paths (a distilled carry-skip).
///
/// Inputs: `d` (data), `s0..s(stages-1)` (selects).
/// Output: `y`.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `stages == 0` or `depth == 0`.
pub fn bypass_chain(stages: usize, depth: usize) -> Result<Network, NetworkError> {
    assert!(stages > 0 && depth > 0);
    let mut net = Network::new(format!("bypass{stages}x{depth}"));
    let d = net.add_input("d")?;
    let selects: Vec<NodeId> = (0..stages)
        .map(|i| net.add_input(format!("s{i}")))
        .collect::<Result<_, _>>()?;
    let mut cur = d;
    for (i, &s) in selects.iter().enumerate() {
        let mut slow = cur;
        for j in 0..depth {
            slow = net.add_gate(format!("b{i}_{j}"), GateKind::Buf, &[slow])?;
        }
        // s=1 selects the slow branch, s=0 bypasses.
        cur = net.add_gate(format!("m{i}"), GateKind::Mux, &[s, cur, slow])?;
    }
    let y = net.add_gate("y", GateKind::Buf, &[cur])?;
    net.mark_output(y);
    Ok(net)
}

/// A two-MUX shared-select bypass pair (the canonical minimal false
/// path, used throughout the test-suites): `stages` copies in series,
/// all sharing one select.
///
/// The topological longest path threads every slow branch, but each
/// slow branch needs the shared select at 1 to enter and 0 to leave —
/// false for `stages ≥ 1`.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
pub fn shared_select_bypass(stages: usize, depth: usize) -> Result<Network, NetworkError> {
    assert!(stages > 0 && depth > 0);
    let mut net = Network::new(format!("ssb{stages}x{depth}"));
    let s = net.add_input("s")?;
    let d = net.add_input("d")?;
    let c = net.add_input("c")?;
    let mut cur = d;
    for i in 0..stages {
        let mut slow = cur;
        for j in 0..depth {
            slow = net.add_gate(format!("b{i}_{j}"), GateKind::Buf, &[slow])?;
        }
        let m1 = net.add_gate(format!("m1_{i}"), GateKind::Mux, &[s, cur, slow])?;
        cur = net.add_gate(format!("m2_{i}"), GateKind::Mux, &[s, m1, c])?;
    }
    net.mark_output(cur);
    Ok(net)
}

/// A balanced XOR parity tree over `n` inputs — the anti-benchmark: no
/// false paths at all (every path is sensitizable), so all analyses
/// collapse to topological results, like the paper's C499/C1355 rows.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity_tree(n: usize) -> Result<Network, NetworkError> {
    assert!(n > 0);
    let mut net = Network::new(format!("parity{n}"));
    let mut level: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("i{i}")))
        .collect::<Result<_, _>>()?;
    let mut idx = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(net.add_gate(format!("x{idx}"), GateKind::Xor, &[pair[0], pair[1]])?);
                idx += 1;
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let out = level[0];
    net.mark_output(out);
    Ok(net)
}

/// An `n`-bit equality comparator `eq = (a == b)` as a NOR-of-XOR tree,
/// followed by an `enable` AND: shallow, reconvergence-free.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Result<Network, NetworkError> {
    assert!(n > 0);
    let mut net = Network::new(format!("cmp{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let en = net.add_input("en")?;
    let diffs: Vec<NodeId> = (0..n)
        .map(|i| net.add_gate(format!("d{i}"), GateKind::Xor, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let any = if diffs.len() == 1 {
        diffs[0]
    } else {
        net.add_gate("any", GateKind::Or, &diffs[..diffs.len().min(16)])?
    };
    let eq = net.add_gate("eqraw", GateKind::Not, &[any])?;
    let out = net.add_gate("eq", GateKind::And, &[eq, en])?;
    net.mark_output(out);
    Ok(net)
}

/// A priority encoder-ish AND-OR cascade with late-arriving enables —
/// deep, with moderate false-path content via chained gating.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn priority_chain(n: usize) -> Result<Network, NetworkError> {
    assert!(n > 0);
    let mut net = Network::new(format!("prio{n}"));
    let reqs: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("r{i}")))
        .collect::<Result<_, _>>()?;
    let mut blocked = net.add_gate("k0", GateKind::Const0, &[])?;
    for (i, &r) in reqs.iter().enumerate() {
        let nb = net.add_gate(format!("nb{i}"), GateKind::Not, &[blocked])?;
        let grant = net.add_gate(format!("g{i}"), GateKind::And, &[r, nb])?;
        net.mark_output(grant);
        blocked = net.add_gate(format!("blk{i}"), GateKind::Or, &[blocked, r])?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrta_chi::{EngineKind, FunctionalTiming};
    use xrta_timing::{topological_delays, Time, UnitDelay};

    #[test]
    fn bypass_chain_semantics() {
        let net = bypass_chain(2, 3).unwrap();
        // y = d regardless of selects (the muxes always pass d through
        // either branch).
        for m in 0..8u32 {
            let ins = [(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(net.eval(&ins), vec![ins[0]]);
        }
    }

    #[test]
    fn shared_select_bypass_is_false_pathy() {
        let net = shared_select_bypass(2, 2).unwrap();
        let out = net.outputs()[0];
        let topo = topological_delays(&net, &UnitDelay)
            .into_iter()
            .max()
            .unwrap();
        let ft = FunctionalTiming::new(
            &net,
            &UnitDelay,
            vec![Time::ZERO; net.inputs().len()],
            EngineKind::Sat,
        );
        assert!(ft.true_arrival(out) < topo);
    }

    #[test]
    fn parity_tree_has_no_false_paths() {
        let net = parity_tree(8).unwrap();
        let out = net.outputs()[0];
        let topo = topological_delays(&net, &UnitDelay)[0];
        let ft = FunctionalTiming::new(&net, &UnitDelay, vec![Time::ZERO; 8], EngineKind::Sat);
        assert_eq!(ft.true_arrival(out), topo);
        // Semantics: parity.
        for m in 0..256u32 {
            let ins: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&ins), vec![m.count_ones() % 2 == 1]);
        }
    }

    #[test]
    fn comparator_semantics() {
        let net = comparator(3).unwrap();
        for m in 0..128u32 {
            let ins: Vec<bool> = (0..7).map(|i| (m >> i) & 1 == 1).collect();
            let a = m & 7;
            let b = (m >> 3) & 7;
            let en = (m >> 6) & 1 == 1;
            assert_eq!(net.eval(&ins), vec![a == b && en]);
        }
    }

    #[test]
    fn priority_chain_semantics() {
        let net = priority_chain(4).unwrap();
        for m in 0..16u32 {
            let ins: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let out = net.eval(&ins);
            let first = (0..4).find(|&i| ins[i]);
            for (i, &g) in out.iter().enumerate() {
                assert_eq!(g, Some(i) == first, "grant {i} for {m:04b}");
            }
        }
    }
}
