//! Adder generators.
//!
//! The carry-skip (carry-bypass) adder is the canonical false-path
//! circuit: its longest topological path runs through every ripple
//! stage *and* the bypass muxes, but sensitizing it would require every
//! block's propagate signal to be both true (to ripple through) and
//! false (to not bypass) — impossible, so functional timing analysis
//! proves a much shorter true delay, and required times at the operand
//! inputs relax accordingly.

use xrta_network::{GateKind, Network, NetworkError, NodeId};

/// Builds an `n`-bit ripple-carry adder `s = a + b + cin`.
///
/// Inputs `a0..`, `b0..`, `cin`; outputs `s0..`, `cout`.
///
/// # Errors
///
/// Returns [`NetworkError`] on impossible widths (n = 0).
pub fn ripple_carry_adder(n: usize) -> Result<Network, NetworkError> {
    assert!(n > 0, "adder width must be positive");
    let mut net = Network::new(format!("rca{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let cin = net.add_input("cin")?;
    let mut carry = cin;
    for i in 0..n {
        let p = net.add_gate(format!("p{i}"), GateKind::Xor, &[a[i], b[i]])?;
        let s = net.add_gate(format!("s{i}"), GateKind::Xor, &[p, carry])?;
        let g1 = net.add_gate(format!("cg{i}"), GateKind::And, &[a[i], b[i]])?;
        let g2 = net.add_gate(format!("cp{i}"), GateKind::And, &[p, carry])?;
        carry = net.add_gate(format!("c{}", i + 1), GateKind::Or, &[g1, g2])?;
        net.mark_output(s);
    }
    net.mark_output(carry);
    Ok(net)
}

/// Builds an `n`-bit carry-skip adder with blocks of `block` bits.
///
/// Each block ripples internally; a bypass MUX forwards the block's
/// carry-in straight to its carry-out when every bit of the block
/// propagates — creating classic false paths through the ripple chains.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `block == 0` or `n == 0`.
pub fn carry_skip_adder(n: usize, block: usize) -> Result<Network, NetworkError> {
    assert!(n > 0 && block > 0, "width and block must be positive");
    let mut net = Network::new(format!("csk{n}x{block}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let cin = net.add_input("cin")?;

    let mut block_cin = cin;
    let mut i = 0;
    let mut blk = 0;
    while i < n {
        let hi = (i + block).min(n);
        let mut carry = block_cin;
        let mut props: Vec<NodeId> = Vec::new();
        for j in i..hi {
            let p = net.add_gate(format!("p{j}"), GateKind::Xor, &[a[j], b[j]])?;
            props.push(p);
            let s = net.add_gate(format!("s{j}"), GateKind::Xor, &[p, carry])?;
            let g1 = net.add_gate(format!("cg{j}"), GateKind::And, &[a[j], b[j]])?;
            let g2 = net.add_gate(format!("cp{j}"), GateKind::And, &[p, carry])?;
            carry = net.add_gate(format!("c{}", j + 1), GateKind::Or, &[g1, g2])?;
            net.mark_output(s);
        }
        // Block propagate = AND of all bit propagates.
        let bp = if props.len() == 1 {
            net.add_gate(format!("bp{blk}"), GateKind::Buf, &[props[0]])?
        } else {
            net.add_gate(format!("bp{blk}"), GateKind::And, &props)?
        };
        // Skip mux: if the whole block propagates, forward block_cin.
        block_cin = net.add_gate(format!("skip{blk}"), GateKind::Mux, &[bp, carry, block_cin])?;
        i = hi;
        blk += 1;
    }
    net.mark_output(block_cin);
    Ok(net)
}

/// Builds an `n`-bit carry-select adder with blocks of `block` bits:
/// each block computes both carry-in-0 and carry-in-1 results and muxes
/// on the actual carry.
///
/// # Errors
///
/// Returns [`NetworkError`] on construction failure.
///
/// # Panics
///
/// Panics if `block == 0` or `n == 0`.
pub fn carry_select_adder(n: usize, block: usize) -> Result<Network, NetworkError> {
    assert!(n > 0 && block > 0, "width and block must be positive");
    let mut net = Network::new(format!("csel{n}x{block}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")))
        .collect::<Result<_, _>>()?;
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")))
        .collect::<Result<_, _>>()?;
    let cin = net.add_input("cin")?;

    let mut carry = cin;
    let mut i = 0;
    let mut blk = 0;
    while i < n {
        let hi = (i + block).min(n);
        // Two speculative ripple chains with constant carry-in.
        let mut c0 = net.add_gate(format!("k0_{blk}"), GateKind::Const0, &[])?;
        let mut c1 = net.add_gate(format!("k1_{blk}"), GateKind::Const1, &[])?;
        let mut sums0 = Vec::new();
        let mut sums1 = Vec::new();
        for j in i..hi {
            let p = net.add_gate(format!("p{j}"), GateKind::Xor, &[a[j], b[j]])?;
            let s0 = net.add_gate(format!("s0_{j}"), GateKind::Xor, &[p, c0])?;
            let s1 = net.add_gate(format!("s1_{j}"), GateKind::Xor, &[p, c1])?;
            let g = net.add_gate(format!("g{j}"), GateKind::And, &[a[j], b[j]])?;
            let t0 = net.add_gate(format!("t0_{j}"), GateKind::And, &[p, c0])?;
            let t1 = net.add_gate(format!("t1_{j}"), GateKind::And, &[p, c1])?;
            c0 = net.add_gate(format!("c0_{}", j + 1), GateKind::Or, &[g, t0])?;
            c1 = net.add_gate(format!("c1_{}", j + 1), GateKind::Or, &[g, t1])?;
            sums0.push(s0);
            sums1.push(s1);
        }
        // Select on the incoming carry.
        for (j, (s0, s1)) in sums0.iter().zip(&sums1).enumerate() {
            let s = net.add_gate(format!("s{}", i + j), GateKind::Mux, &[carry, *s0, *s1])?;
            net.mark_output(s);
        }
        carry = net.add_gate(format!("c{blk}"), GateKind::Mux, &[carry, c0, c1])?;
        i = hi;
        blk += 1;
    }
    net.mark_output(carry);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_adder(net: &Network, n: usize) {
        // net inputs: a0..a(n-1), b0..b(n-1), cin; outputs s0.., cout.
        let limit = 1u64 << n;
        let cases: Vec<(u64, u64, u64)> = if n <= 3 {
            let mut v = Vec::new();
            for a in 0..limit {
                for b in 0..limit {
                    for c in 0..2 {
                        v.push((a, b, c));
                    }
                }
            }
            v
        } else {
            // Pseudo-random sample plus corner cases.
            let mut v = vec![
                (0, 0, 0),
                (limit - 1, 0, 1),
                (limit - 1, limit - 1, 1),
                (limit / 2, limit / 2 - 1, 0),
            ];
            let mut x = 0x243f6a8885a308d3u64;
            for _ in 0..40 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v.push((x % limit, (x >> 17) % limit, (x >> 40) & 1));
            }
            v
        };
        for (a, b, c) in cases {
            let mut ins = Vec::with_capacity(2 * n + 1);
            for i in 0..n {
                ins.push((a >> i) & 1 == 1);
            }
            for i in 0..n {
                ins.push((b >> i) & 1 == 1);
            }
            ins.push(c == 1);
            let out = net.eval(&ins);
            let total = a + b + c;
            for (i, &bit) in out.iter().take(n).enumerate() {
                assert_eq!(bit, (total >> i) & 1 == 1, "sum bit {i} of {a}+{b}+{c}");
            }
            assert_eq!(out[n], (total >> n) & 1 == 1, "cout of {a}+{b}+{c}");
        }
    }

    #[test]
    fn ripple_carry_correct() {
        for n in [1, 2, 3, 8] {
            let net = ripple_carry_adder(n).unwrap();
            check_adder(&net, n);
        }
    }

    #[test]
    fn carry_skip_correct() {
        for (n, blk) in [(2, 1), (3, 2), (4, 2), (8, 3)] {
            let net = carry_skip_adder(n, blk).unwrap();
            check_adder(&net, n);
        }
    }

    #[test]
    fn carry_select_correct() {
        for (n, blk) in [(2, 1), (4, 2), (8, 4)] {
            let net = carry_select_adder(n, blk).unwrap();
            check_adder(&net, n);
        }
    }

    #[test]
    fn carry_skip_has_false_paths() {
        use xrta_chi::{EngineKind, FunctionalTiming};
        use xrta_timing::{topological_delays, Time, UnitDelay};
        let net = carry_skip_adder(8, 4).unwrap();
        let cout = *net.outputs().last().unwrap();
        let topo = topological_delays(&net, &UnitDelay);
        let worst_topo = topo.iter().copied().max().unwrap();
        let ft = FunctionalTiming::new(
            &net,
            &UnitDelay,
            vec![Time::ZERO; net.inputs().len()],
            EngineKind::Sat,
        );
        let true_t = ft.true_arrival(cout);
        assert!(
            true_t < worst_topo,
            "carry-skip cout true delay {true_t} must beat topological {worst_topo}"
        );
    }
}
