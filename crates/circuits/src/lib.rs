//! # xrta-circuits — benchmark circuits for the reproduction
//!
//! Generators (adders with planted false paths, bypass chains, parity
//! trees, comparators, priority chains, array multipliers, seeded random
//! DAGs), the paper's worked examples ([`fig4`], [`fig6`],
//! [`two_mux_bypass`], [`c17`]), and the surrogate suite backing the
//! Table 1 / Table 2 reproduction ([`mcnc_rows`], [`iscas_rows`]).
//!
//! ## Example
//!
//! ```
//! use xrta_circuits::carry_skip_adder;
//!
//! let adder = carry_skip_adder(8, 4)?;
//! assert_eq!(adder.inputs().len(), 17);   // a, b, cin
//! assert_eq!(adder.outputs().len(), 9);   // s, cout
//! # Ok::<(), xrta_network::NetworkError>(())
//! ```

mod adders;
mod chains;
mod examples;
mod mult;
mod random_dag;
mod suite;

pub use adders::{carry_select_adder, carry_skip_adder, ripple_carry_adder};
pub use chains::{bypass_chain, comparator, parity_tree, priority_chain, shared_select_bypass};
pub use examples::{c17, fig4, fig6, two_mux_bypass};
pub use mult::array_multiplier;
pub use random_dag::{random_circuit, RandomCircuitSpec};
pub use suite::{block_circuit, iscas_rows, mcnc_rows, SuiteRow};
