//! Command-line plumbing shared by the `xrta` binary's subcommands.
//!
//! The one table that matters is [`COMMANDS`]/[`FLAGS`]: every
//! subcommand and every flag the parser accepts is declared there,
//! and the usage text is *generated* from it ([`render_usage`]), so
//! the two cannot drift apart — a flag the parser takes but the table
//! omits is rejected as unknown, and the unit tests assert the
//! converse (every declared flag parses and appears in the usage).
//!
//! [`parse_args`] is pure (slice in, [`Args`] out) so tests can drive
//! it without a process boundary; the binary passes `std::env::args`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xrta_chi::EngineKind;
use xrta_network::Network;
use xrta_timing::{topological_delays, Time, UnitDelay};

/// One subcommand: its positional argument (if any) and the flags it
/// accepts beyond [`COMMON_FLAGS`].
pub struct CommandSpec {
    /// Subcommand name as typed.
    pub name: &'static str,
    /// Placeholder for the positional argument; `None` when the
    /// command takes none. Brackets mark it optional.
    pub arg: Option<&'static str>,
    /// Placeholder for a second positional argument (only ever
    /// optional; `xrta route drain <shard>` is the one user).
    pub arg2: Option<&'static str>,
    /// Flags this command accepts (beyond the common ones).
    pub flags: &'static [&'static str],
    /// One-line description for the usage text.
    pub summary: &'static str,
}

/// One flag: its value placeholder (`None` for boolean switches) and
/// help text.
pub struct FlagSpec {
    /// The flag as typed, `--dashes` included.
    pub flag: &'static str,
    /// Value placeholder (e.g. `SECS`); `None` for switches.
    pub value: Option<&'static str>,
    /// One-line description for the usage text.
    pub help: &'static str,
}

/// Flags every subcommand accepts.
pub const COMMON_FLAGS: &[&str] = &["--cancel-file", "--failpoints", "--failpoints-seed"];

/// The subcommand table. Order is the usage-text order.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "stats",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &[],
        summary: "structural statistics",
    },
    CommandSpec {
        name: "topo",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &["--req"],
        summary: "topological arrival/required/slack",
    },
    CommandSpec {
        name: "truedelay",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &["--engine"],
        summary: "functional (false-path) delays",
    },
    CommandSpec {
        name: "reqtime",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &[
            "--algo",
            "--engine",
            "--req",
            "--timeout",
            "--node-limit",
            "--sat-conflicts",
            "--mem-limit",
            "--fallback",
            "--report",
        ],
        summary: "required times via the governed session ladder",
    },
    CommandSpec {
        name: "resynth",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &[
            "--engine",
            "--req",
            "--timeout",
            "--node-limit",
            "--sat-conflicts",
            "--mem-limit",
            "--out",
            "--max-chains",
            "--slack-margin",
        ],
        summary: "slack-guided AND-OR restructuring with verified equivalence",
    },
    CommandSpec {
        name: "gen",
        arg: Some("<family>"),
        arg2: None,
        flags: &["--bits", "--bypass", "--seed", "--out"],
        summary: "emit a generated netlist (family: adder)",
    },
    CommandSpec {
        name: "slack",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &["--node", "--req", "--engine"],
        summary: "false-path-aware slack at one node",
    },
    CommandSpec {
        name: "macro",
        arg: Some("<netlist>"),
        arg2: None,
        flags: &["--engine"],
        summary: "pin-to-pin macro-model",
    },
    CommandSpec {
        name: "fuzz",
        arg: None,
        arg2: None,
        flags: &[
            "--seeds",
            "--max-inputs",
            "--time-cap",
            "--corpus",
            "--base-seed",
            "--edits",
            "--resynth",
            "--mem-limit",
        ],
        summary: "differential fuzzing against the exhaustive oracle",
    },
    CommandSpec {
        name: "batch",
        arg: Some("<manifest>"),
        arg2: None,
        flags: &[
            "--journal",
            "--report",
            "--resume",
            "--seed",
            "--max-retries",
            "--backoff-base",
            "--backoff-cap",
            "--aggregate-timeout",
            "--threads",
            "--timeout",
            "--fallback",
            "--engine",
            "--route",
            "--mem-limit",
        ],
        summary: "crash-resilient batch runner",
    },
    CommandSpec {
        name: "serve",
        arg: None,
        arg2: None,
        flags: &[
            "--addr",
            "--workers",
            "--queue-cap",
            "--mem-cache",
            "--cache-dir",
            "--max-timeout",
            "--node-limit",
            "--sat-conflicts",
            "--mem-limit",
            "--drain-deadline",
            "--allow-hold",
        ],
        summary: "analysis daemon with result cache and admission control",
    },
    CommandSpec {
        name: "request",
        arg: Some("[netlist]"),
        arg2: None,
        flags: &[
            "--addr",
            "--req",
            "--algo",
            "--engine",
            "--timeout",
            "--node-limit",
            "--sat-conflicts",
            "--mem-limit",
            "--hold-ms",
            "--stats",
            "--ping",
            "--shutdown",
            "--retries",
            "--retry-budget-ms",
            "--delta",
        ],
        summary: "query a running serve daemon",
    },
    CommandSpec {
        name: "route",
        arg: Some("[drain]"),
        arg2: Some("[shard]"),
        flags: &[
            "--addr",
            "--shards",
            "--probe-interval",
            "--eject-after",
            "--cooldown",
            "--hedge-ms",
            "--warm-hits",
            "--retries",
            "--retry-budget-ms",
            "--drain-deadline",
        ],
        summary: "consistent-hash router over serve shards (or: drain one shard)",
    },
];

/// The flag table: everything [`parse_args`] accepts, anywhere.
pub const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        flag: "--req",
        value: Some("T"),
        help: "shared output required time (default: topological delay)",
    },
    FlagSpec {
        flag: "--engine",
        value: Some("bdd|sat"),
        help: "χ oracle engine",
    },
    FlagSpec {
        flag: "--algo",
        value: Some("exact|approx1|approx2|topological"),
        help: "analysis rung to request",
    },
    FlagSpec {
        flag: "--node",
        value: Some("NAME"),
        help: "node to compute slack at",
    },
    FlagSpec {
        flag: "--timeout",
        value: Some("SECS"),
        help: "per-rung wall-clock allowance",
    },
    FlagSpec {
        flag: "--node-limit",
        value: Some("N"),
        help: "BDD node budget",
    },
    FlagSpec {
        flag: "--sat-conflicts",
        value: Some("N"),
        help: "SAT conflict budget per oracle query",
    },
    FlagSpec {
        flag: "--mem-limit",
        value: Some("BYTES"),
        help: "memory budget with K/M/G suffixes (e.g. 64M); serve: policy cap",
    },
    FlagSpec {
        flag: "--fallback",
        value: Some("on|off"),
        help: "degrade down the ladder on budget exhaustion",
    },
    FlagSpec {
        flag: "--seeds",
        value: Some("N"),
        help: "fuzz seeds to run",
    },
    FlagSpec {
        flag: "--max-inputs",
        value: Some("K"),
        help: "primary-input cap for fuzz circuits",
    },
    FlagSpec {
        flag: "--time-cap",
        value: Some("SECS"),
        help: "wall-clock bound for the fuzz run",
    },
    FlagSpec {
        flag: "--corpus",
        value: Some("DIR"),
        help: "where fuzz files shrunk reproducers",
    },
    FlagSpec {
        flag: "--base-seed",
        value: Some("N"),
        help: "first fuzz seed",
    },
    FlagSpec {
        flag: "--edits",
        value: Some("N"),
        help: "run N ECO edit sequences (incremental-vs-scratch differential)",
    },
    FlagSpec {
        flag: "--resynth",
        value: Some("N"),
        help: "run N resynthesis differentials (equivalence + delay non-regression)",
    },
    FlagSpec {
        flag: "--out",
        value: Some("PATH"),
        help: "write the resulting netlist here (resynth: original bytes when no gain)",
    },
    FlagSpec {
        flag: "--max-chains",
        value: Some("N"),
        help: "candidate chains examined per resynthesis pass",
    },
    FlagSpec {
        flag: "--slack-margin",
        value: Some("T"),
        help: "treat outputs within T ticks of the worst slack as critical",
    },
    FlagSpec {
        flag: "--bits",
        value: Some("N"),
        help: "adder width for `gen adder`",
    },
    FlagSpec {
        flag: "--bypass",
        value: Some("K"),
        help: "carry-bypass block size for `gen adder` (0 = plain ripple)",
    },
    FlagSpec {
        flag: "--delta",
        value: None,
        help: "send a delta request: reuse cached cone verdicts server-side",
    },
    FlagSpec {
        flag: "--journal",
        value: Some("PATH"),
        help: "batch journal path",
    },
    FlagSpec {
        flag: "--report",
        value: Some("PATH"),
        help: "batch report path; reqtime: the literal `slack` emits per-node slack JSON",
    },
    FlagSpec {
        flag: "--resume",
        value: None,
        help: "resume a batch run from its journal",
    },
    FlagSpec {
        flag: "--seed",
        value: Some("N"),
        help: "batch scheduling seed; gen: seed delay-override directives",
    },
    FlagSpec {
        flag: "--max-retries",
        value: Some("N"),
        help: "retry budget per batch job",
    },
    FlagSpec {
        flag: "--backoff-base",
        value: Some("SECS"),
        help: "first retry backoff",
    },
    FlagSpec {
        flag: "--backoff-cap",
        value: Some("SECS"),
        help: "backoff ceiling",
    },
    FlagSpec {
        flag: "--aggregate-timeout",
        value: Some("SECS"),
        help: "whole-batch wall-clock budget",
    },
    FlagSpec {
        flag: "--threads",
        value: Some("N"),
        help: "batch worker threads",
    },
    FlagSpec {
        flag: "--addr",
        value: Some("HOST:PORT"),
        help: "serve bind address / request target (port 0 = ephemeral)",
    },
    FlagSpec {
        flag: "--workers",
        value: Some("N"),
        help: "serve worker threads",
    },
    FlagSpec {
        flag: "--queue-cap",
        value: Some("N"),
        help: "admission queue bound (full queue sheds busy)",
    },
    FlagSpec {
        flag: "--mem-cache",
        value: Some("N"),
        help: "in-memory result-cache entries",
    },
    FlagSpec {
        flag: "--cache-dir",
        value: Some("DIR"),
        help: "disk result-cache directory (omit to disable)",
    },
    FlagSpec {
        flag: "--max-timeout",
        value: Some("SECS"),
        help: "policy cap on per-request wall clock",
    },
    FlagSpec {
        flag: "--drain-deadline",
        value: Some("SECS"),
        help: "grace for in-flight work during shutdown",
    },
    FlagSpec {
        flag: "--allow-hold",
        value: None,
        help: "honour the hold_ms request field (testing aid)",
    },
    FlagSpec {
        flag: "--hold-ms",
        value: Some("N"),
        help: "ask the server to pad service time (needs --allow-hold)",
    },
    FlagSpec {
        flag: "--stats",
        value: None,
        help: "fetch the server's counter snapshot",
    },
    FlagSpec {
        flag: "--ping",
        value: None,
        help: "liveness probe",
    },
    FlagSpec {
        flag: "--shutdown",
        value: None,
        help: "ask the server to drain and exit",
    },
    FlagSpec {
        flag: "--shards",
        value: Some("HOSTS"),
        help: "comma-separated backend serve addresses to route across",
    },
    FlagSpec {
        flag: "--probe-interval",
        value: Some("SECS"),
        help: "health-check ping period per shard",
    },
    FlagSpec {
        flag: "--eject-after",
        value: Some("N"),
        help: "consecutive failures before a shard is ejected",
    },
    FlagSpec {
        flag: "--cooldown",
        value: Some("SECS"),
        help: "rest before an ejected shard gets a half-open probe",
    },
    FlagSpec {
        flag: "--hedge-ms",
        value: Some("MS"),
        help: "latency threshold for a hedged try on the next replica",
    },
    FlagSpec {
        flag: "--warm-hits",
        value: Some("N"),
        help: "requests per key before warming the next replica (0 = off)",
    },
    FlagSpec {
        flag: "--retries",
        value: Some("N"),
        help: "retry attempts on busy/connect failures",
    },
    FlagSpec {
        flag: "--retry-budget-ms",
        value: Some("MS"),
        help: "wall-clock cap across all retry attempts",
    },
    FlagSpec {
        flag: "--route",
        value: Some("HOST:PORT"),
        help: "send batch jobs through a running route/serve tier",
    },
    FlagSpec {
        flag: "--cancel-file",
        value: Some("PATH"),
        help: "stop cleanly when this file appears (exit 4)",
    },
    FlagSpec {
        flag: "--failpoints",
        value: Some("SPEC"),
        help: "arm deterministic fault injection (failpoints builds)",
    },
    FlagSpec {
        flag: "--failpoints-seed",
        value: Some("N"),
        help: "seed for probabilistic failpoint actions",
    },
];

/// Everything the subcommands consume, fully defaulted.
#[derive(Debug)]
pub struct Args {
    /// The subcommand.
    pub command: String,
    /// The positional argument (netlist or manifest), when given.
    pub path: Option<String>,
    /// The second positional argument (`route drain <shard>`).
    pub path2: Option<String>,
    /// `--req`.
    pub req: Option<i64>,
    /// `--engine`.
    pub engine: EngineKind,
    /// `--algo` (validated by the consumer against the ladder).
    pub algo: String,
    /// `--node`.
    pub node: Option<String>,
    /// `--timeout`.
    pub timeout: Option<Duration>,
    /// `--node-limit`.
    pub node_limit: Option<usize>,
    /// `--sat-conflicts`.
    pub sat_conflicts: Option<u64>,
    /// `--mem-limit`, parsed to bytes.
    pub mem_limit: Option<u64>,
    /// `--fallback`.
    pub fallback: bool,
    /// `--seeds`.
    pub seeds: usize,
    /// `--max-inputs`.
    pub max_inputs: usize,
    /// `--time-cap`.
    pub time_cap: Option<Duration>,
    /// `--corpus`.
    pub corpus: Option<String>,
    /// `--base-seed`.
    pub base_seed: u64,
    /// `--edits` (`Some`: run the ECO differential instead of the
    /// oracle matrix).
    pub edits: Option<usize>,
    /// `--resynth` (`Some`: run the resynthesis differential instead
    /// of the oracle matrix).
    pub resynth: Option<usize>,
    /// `--out`.
    pub out: Option<String>,
    /// `--max-chains`.
    pub max_chains: usize,
    /// `--slack-margin`, in ticks.
    pub slack_margin: i64,
    /// `--bits`.
    pub bits: usize,
    /// `--bypass` (0 = plain ripple carry).
    pub bypass: usize,
    /// `--delta`.
    pub delta: bool,
    /// `--journal`.
    pub journal: Option<String>,
    /// `--report`.
    pub report_path: Option<String>,
    /// `--resume`.
    pub resume: bool,
    /// `--seed` (`None` when the flag was not given; consumers that
    /// need a value default it themselves).
    pub seed: Option<u64>,
    /// `--max-retries`.
    pub max_retries: u32,
    /// `--backoff-base`.
    pub backoff_base: Duration,
    /// `--backoff-cap`.
    pub backoff_cap: Duration,
    /// `--aggregate-timeout`.
    pub aggregate_timeout: Option<Duration>,
    /// `--threads`.
    pub threads: usize,
    /// `--addr`.
    pub addr: String,
    /// `--workers`.
    pub workers: usize,
    /// `--queue-cap`.
    pub queue_cap: usize,
    /// `--mem-cache`.
    pub mem_cache: usize,
    /// `--cache-dir`.
    pub cache_dir: Option<String>,
    /// `--max-timeout`.
    pub max_timeout: Duration,
    /// `--drain-deadline`.
    pub drain_deadline: Duration,
    /// `--allow-hold`.
    pub allow_hold: bool,
    /// `--hold-ms`.
    pub hold_ms: u64,
    /// `--shards` (comma-separated backend addresses).
    pub shards: Option<String>,
    /// `--probe-interval`.
    pub probe_interval: Duration,
    /// `--eject-after`.
    pub eject_after: u32,
    /// `--cooldown`.
    pub cooldown: Duration,
    /// `--hedge-ms`.
    pub hedge_ms: u64,
    /// `--warm-hits`.
    pub warm_hits: u64,
    /// `--retries`.
    pub retries: u32,
    /// `--retry-budget-ms`.
    pub retry_budget_ms: u64,
    /// `--route`.
    pub route: Option<String>,
    /// `--stats`.
    pub stats_probe: bool,
    /// `--ping`.
    pub ping_probe: bool,
    /// `--shutdown`.
    pub shutdown_probe: bool,
    /// `--cancel-file`.
    pub cancel_file: Option<String>,
    /// `--failpoints`.
    pub failpoints: Option<String>,
    /// `--failpoints-seed`.
    pub failpoints_seed: u64,
}

/// Parses a fractional-seconds flag value into a [`Duration`].
pub fn parse_secs(flag: &str, value: Option<String>) -> Result<Duration, String> {
    let secs: f64 = value
        .ok_or(format!("{flag} needs a value (seconds)"))?
        .parse()
        .map_err(|e| format!("bad {flag}: {e}"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("bad {flag}: {secs} is not a duration"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn spec_for(command: &str) -> Option<&'static CommandSpec> {
    COMMANDS.iter().find(|c| c.name == command)
}

fn flag_spec(flag: &str) -> Option<&'static FlagSpec> {
    FLAGS.iter().find(|f| f.flag == flag)
}

/// Parses `argv` (program name already stripped). Pure: no
/// environment, no I/O.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter().cloned();
    let command = it.next().ok_or("missing command")?;
    let spec = spec_for(&command).ok_or_else(|| format!("unknown command {command:?}"))?;
    let mut it = it.peekable();
    // The positional argument: mandatory when declared `<so>`,
    // optional when declared `[so]` (the request command can run
    // netlist-free probes like --stats).
    let path = match spec.arg {
        None => None,
        Some(placeholder) => {
            let next_is_flag = it.peek().is_some_and(|a| a.starts_with("--"));
            if placeholder.starts_with('[') {
                if next_is_flag {
                    None
                } else {
                    it.next()
                }
            } else {
                Some(it.next().ok_or_else(|| {
                    format!("missing {} path", placeholder.trim_matches(['<', '>']))
                })?)
            }
        }
    };
    // The optional second positional (route's `drain <shard>`).
    let path2 = match spec.arg2 {
        Some(_) if path.is_some() => {
            let next_is_flag = it.peek().is_some_and(|a| a.starts_with("--"));
            if next_is_flag {
                None
            } else {
                it.next()
            }
        }
        _ => None,
    };
    let mut args = Args {
        command,
        path,
        path2,
        req: None,
        engine: EngineKind::Sat,
        algo: "approx2".to_string(),
        node: None,
        timeout: None,
        node_limit: None,
        sat_conflicts: None,
        mem_limit: None,
        fallback: true,
        seeds: 100,
        max_inputs: 8,
        time_cap: None,
        corpus: None,
        base_seed: 0xF0CC,
        edits: None,
        resynth: None,
        out: None,
        max_chains: 64,
        slack_margin: 0,
        bits: 8,
        bypass: 0,
        delta: false,
        journal: None,
        report_path: None,
        resume: false,
        seed: None,
        max_retries: 2,
        backoff_base: Duration::from_millis(100),
        backoff_cap: Duration::from_secs(5),
        aggregate_timeout: None,
        threads: 1,
        addr: "127.0.0.1:7199".to_string(),
        workers: 4,
        queue_cap: 64,
        mem_cache: 256,
        cache_dir: None,
        max_timeout: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(5),
        allow_hold: false,
        hold_ms: 0,
        shards: None,
        probe_interval: Duration::from_millis(200),
        eject_after: 3,
        cooldown: Duration::from_secs(1),
        hedge_ms: 150,
        warm_hits: 3,
        retries: 3,
        retry_budget_ms: 2_000,
        route: None,
        stats_probe: false,
        ping_probe: false,
        shutdown_probe: false,
        cancel_file: None,
        failpoints: None,
        failpoints_seed: 0,
    };
    while let Some(a) = it.next() {
        // A bare token fills the positional slot if it is still empty
        // (so `xrta request --addr H:P netlist.bench` also works).
        if !a.starts_with("--") && args.path.is_none() && spec.arg.is_some() {
            args.path = Some(a);
            continue;
        }
        if !a.starts_with("--") && args.path2.is_none() && spec.arg2.is_some() {
            args.path2 = Some(a);
            continue;
        }
        let fspec = flag_spec(&a).ok_or_else(|| format!("unknown argument {a:?}"))?;
        if !spec.flags.contains(&fspec.flag) && !COMMON_FLAGS.contains(&fspec.flag) {
            return Err(format!("{a} is not a {} flag", args.command));
        }
        // Switches take no value; everything else consumes one.
        let mut value = || -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{} needs a value", fspec.flag))
        };
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("bad {flag}: {e}"))
        }
        match a.as_str() {
            "--req" => args.req = Some(num("--req", value()?)?),
            "--engine" => {
                args.engine = value()?.parse()?;
            }
            "--algo" => args.algo = value()?,
            "--node" => args.node = Some(value()?),
            "--timeout" => args.timeout = Some(parse_secs("--timeout", Some(value()?))?),
            "--node-limit" => args.node_limit = Some(num("--node-limit", value()?)?),
            "--sat-conflicts" => args.sat_conflicts = Some(num("--sat-conflicts", value()?)?),
            "--mem-limit" => {
                args.mem_limit = Some(
                    xrta_robust::mem::parse_bytes(&value()?)
                        .map_err(|e| format!("bad --mem-limit: {e}"))?,
                )
            }
            "--fallback" => {
                args.fallback = match value()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --fallback {other:?} (want on|off)")),
                }
            }
            "--seeds" => args.seeds = num("--seeds", value()?)?,
            "--max-inputs" => {
                let k: usize = num("--max-inputs", value()?)?;
                if !(2..=xrta_verify::MAX_ORACLE_INPUTS).contains(&k) {
                    return Err(format!(
                        "bad --max-inputs: {k} not in 2..={}",
                        xrta_verify::MAX_ORACLE_INPUTS
                    ));
                }
                args.max_inputs = k;
            }
            "--time-cap" => args.time_cap = Some(parse_secs("--time-cap", Some(value()?))?),
            "--corpus" => args.corpus = Some(value()?),
            "--base-seed" => args.base_seed = num("--base-seed", value()?)?,
            "--edits" => args.edits = Some(num("--edits", value()?)?),
            "--resynth" => args.resynth = Some(num("--resynth", value()?)?),
            "--out" => args.out = Some(value()?),
            "--max-chains" => args.max_chains = num("--max-chains", value()?)?,
            "--slack-margin" => args.slack_margin = num("--slack-margin", value()?)?,
            "--bits" => {
                let n: usize = num("--bits", value()?)?;
                if !(1..=64).contains(&n) {
                    return Err(format!("bad --bits: {n} not in 1..=64"));
                }
                args.bits = n;
            }
            "--bypass" => args.bypass = num("--bypass", value()?)?,
            "--delta" => args.delta = true,
            "--journal" => args.journal = Some(value()?),
            "--report" => args.report_path = Some(value()?),
            "--resume" => args.resume = true,
            "--seed" => args.seed = Some(num("--seed", value()?)?),
            "--max-retries" => args.max_retries = num("--max-retries", value()?)?,
            "--backoff-base" => args.backoff_base = parse_secs("--backoff-base", Some(value()?))?,
            "--backoff-cap" => args.backoff_cap = parse_secs("--backoff-cap", Some(value()?))?,
            "--aggregate-timeout" => {
                args.aggregate_timeout = Some(parse_secs("--aggregate-timeout", Some(value()?))?)
            }
            "--threads" => args.threads = num("--threads", value()?)?,
            "--addr" => args.addr = value()?,
            "--workers" => args.workers = num("--workers", value()?)?,
            "--queue-cap" => args.queue_cap = num("--queue-cap", value()?)?,
            "--mem-cache" => args.mem_cache = num("--mem-cache", value()?)?,
            "--cache-dir" => args.cache_dir = Some(value()?),
            "--max-timeout" => args.max_timeout = parse_secs("--max-timeout", Some(value()?))?,
            "--drain-deadline" => {
                args.drain_deadline = parse_secs("--drain-deadline", Some(value()?))?
            }
            "--allow-hold" => args.allow_hold = true,
            "--hold-ms" => args.hold_ms = num("--hold-ms", value()?)?,
            "--shards" => args.shards = Some(value()?),
            "--probe-interval" => {
                args.probe_interval = parse_secs("--probe-interval", Some(value()?))?
            }
            "--eject-after" => args.eject_after = num("--eject-after", value()?)?,
            "--cooldown" => args.cooldown = parse_secs("--cooldown", Some(value()?))?,
            "--hedge-ms" => args.hedge_ms = num("--hedge-ms", value()?)?,
            "--warm-hits" => args.warm_hits = num("--warm-hits", value()?)?,
            "--retries" => args.retries = num("--retries", value()?)?,
            "--retry-budget-ms" => args.retry_budget_ms = num("--retry-budget-ms", value()?)?,
            "--route" => args.route = Some(value()?),
            "--stats" => args.stats_probe = true,
            "--ping" => args.ping_probe = true,
            "--shutdown" => args.shutdown_probe = true,
            "--cancel-file" => args.cancel_file = Some(value()?),
            "--failpoints" => args.failpoints = Some(value()?),
            "--failpoints-seed" => args.failpoints_seed = num("--failpoints-seed", value()?)?,
            other => unreachable!("flag {other} is in FLAGS but unhandled"),
        }
    }
    Ok(args)
}

/// The usage text, generated from [`COMMANDS`] and [`FLAGS`].
pub fn render_usage() -> String {
    let mut out = String::from("usage:\n");
    for c in COMMANDS {
        let mut line = format!("  xrta {}", c.name);
        if let Some(arg) = c.arg {
            line.push(' ');
            line.push_str(arg);
        }
        if let Some(arg2) = c.arg2 {
            line.push(' ');
            line.push_str(arg2);
        }
        for flag in c.flags {
            let f = flag_spec(flag).expect("command table references a declared flag");
            match f.value {
                Some(v) => line.push_str(&format!(" [{} {v}]", f.flag)),
                None => line.push_str(&format!(" [{}]", f.flag)),
            }
        }
        out.push_str(&line);
        out.push_str(&format!("\n      {}\n", c.summary));
    }
    out.push_str("  common flags:");
    for flag in COMMON_FLAGS {
        let f = flag_spec(flag).expect("COMMON_FLAGS references a declared flag");
        match f.value {
            Some(v) => out.push_str(&format!(" [{} {v}]", f.flag)),
            None => out.push_str(&format!(" [{}]", f.flag)),
        }
    }
    out.push('\n');
    out
}

/// Scheduling seed applied when `--seed` is absent (batch, request,
/// route; `gen` instead reads absence as "no delay overrides").
pub const DEFAULT_SEED: u64 = 0x0BA7C4;

/// The shared-required-time vector: `--req T` at every output, or the
/// topological delays (the paper's experimental protocol).
pub fn required_vector(net: &Network, req: Option<i64>) -> Vec<Time> {
    match req {
        Some(t) => vec![Time::new(t); net.outputs().len()],
        None => topological_delays(net, &UnitDelay),
    }
}

/// Watches for `path` to appear, raising the returned flag when it
/// does. The poll loop is a detached daemon thread; it dies with the
/// process.
pub fn cancel_flag_for(path: &str) -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    let watched = PathBuf::from(path);
    let raised = Arc::clone(&flag);
    std::thread::spawn(move || loop {
        if watched.exists() {
            raised.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// A plausible value for each value-placeholder in the table, so
    /// the coverage test below can drive the real parser.
    fn sample_value(hint: &str) -> &'static str {
        match hint {
            "T" => "3",
            "bdd|sat" => "sat",
            "exact|approx1|approx2|topological" => "approx2",
            "on|off" => "on",
            "SECS" => "1.5",
            "K" => "4",
            "N" => "7",
            "MS" => "150",
            "BYTES" => "64M",
            "HOST:PORT" => "127.0.0.1:0",
            "HOSTS" => "127.0.0.1:7101,127.0.0.1:7102",
            "NAME" | "PATH" | "DIR" | "SPEC" => "x",
            other => panic!("no sample for value hint {other:?}"),
        }
    }

    /// The command that accepts a given flag, for the coverage test.
    fn host_command(flag: &str) -> &'static CommandSpec {
        COMMANDS
            .iter()
            .find(|c| c.flags.contains(&flag))
            .unwrap_or(&COMMANDS[0])
    }

    #[test]
    fn every_declared_flag_is_accepted_and_documented() {
        let usage = render_usage();
        for f in FLAGS {
            assert!(
                usage.contains(f.flag),
                "{} missing from the usage text",
                f.flag
            );
            let c = host_command(f.flag);
            let mut parts = vec![c.name];
            if let Some(arg) = c.arg {
                if !arg.starts_with('[') {
                    parts.push("netlist.bench");
                }
            }
            parts.push(f.flag);
            if let Some(hint) = f.value {
                parts.push(sample_value(hint));
            }
            let parsed = parse_args(&argv(&parts));
            assert!(parsed.is_ok(), "{} rejected: {:?}", f.flag, parsed.err());
        }
    }

    #[test]
    fn mem_limit_parses_units_and_rejects_garbage() {
        let ok = parse_args(&argv(&["reqtime", "x.bench", "--mem-limit", "64M"])).unwrap();
        assert_eq!(ok.mem_limit, Some(64 << 20));
        let ok = parse_args(&argv(&["serve", "--mem-limit", "1G"])).unwrap();
        assert_eq!(ok.mem_limit, Some(1 << 30));
        let err = parse_args(&argv(&["reqtime", "x.bench", "--mem-limit", "lots"]));
        assert!(err.is_err(), "malformed byte count must be a usage error");
    }

    #[test]
    fn every_command_is_documented() {
        let usage = render_usage();
        for c in COMMANDS {
            assert!(usage.contains(&format!("xrta {}", c.name)), "{}", c.name);
            for flag in c.flags {
                assert!(
                    flag_spec(flag).is_some(),
                    "command {} references undeclared flag {flag}",
                    c.name
                );
            }
        }
        for flag in COMMON_FLAGS {
            assert!(flag_spec(flag).is_some());
        }
    }

    #[test]
    fn rejects_unknown_and_misplaced_flags() {
        assert!(parse_args(&argv(&["stats", "x.bench", "--nope"]))
            .unwrap_err()
            .contains("unknown argument"));
        // --workers is a serve flag; stats must refuse it.
        assert!(parse_args(&argv(&["stats", "x.bench", "--workers", "2"]))
            .unwrap_err()
            .contains("not a stats flag"));
        assert!(parse_args(&argv(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn positional_arguments_follow_the_table() {
        assert!(parse_args(&argv(&["reqtime"]))
            .unwrap_err()
            .contains("missing netlist path"));
        assert!(
            parse_args(&argv(&["fuzz"])).is_ok(),
            "fuzz takes no netlist"
        );
        // request's netlist is optional: probes work without one.
        let probe = parse_args(&argv(&["request", "--stats"])).unwrap();
        assert!(probe.stats_probe);
        assert_eq!(probe.path, None);
        let q = parse_args(&argv(&["request", "add.bench", "--req", "9"])).unwrap();
        assert_eq!(q.path.as_deref(), Some("add.bench"));
        assert_eq!(q.req, Some(9));
    }

    #[test]
    fn route_takes_two_optional_positionals() {
        // Plain router start: both positionals absent.
        let r = parse_args(&argv(&[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "127.0.0.1:7101,127.0.0.1:7102",
            "--hedge-ms",
            "80",
            "--warm-hits",
            "2",
        ]))
        .unwrap();
        assert_eq!(r.path, None);
        assert_eq!(r.path2, None);
        assert_eq!(r.shards.as_deref(), Some("127.0.0.1:7101,127.0.0.1:7102"));
        assert_eq!(r.hedge_ms, 80);
        assert_eq!(r.warm_hits, 2);
        // Rolling drain: both positionals present.
        let d = parse_args(&argv(&[
            "route",
            "drain",
            "127.0.0.1:7101",
            "--addr",
            "127.0.0.1:7100",
        ]))
        .unwrap();
        assert_eq!(d.path.as_deref(), Some("drain"));
        assert_eq!(d.path2.as_deref(), Some("127.0.0.1:7101"));
        // Flags may also come first.
        let d2 = parse_args(&argv(&[
            "route",
            "--addr",
            "127.0.0.1:7100",
            "drain",
            "127.0.0.1:7101",
        ]))
        .unwrap();
        assert_eq!(d2.path.as_deref(), Some("drain"));
        assert_eq!(d2.path2.as_deref(), Some("127.0.0.1:7101"));
    }

    #[test]
    fn gen_and_resynth_parse_their_flags() {
        let g = parse_args(&argv(&[
            "gen", "adder", "--bits", "16", "--bypass", "4", "--seed", "9",
        ]))
        .unwrap();
        assert_eq!(g.path.as_deref(), Some("adder"));
        assert_eq!(g.bits, 16);
        assert_eq!(g.bypass, 4);
        assert_eq!(g.seed, Some(9));
        assert!(parse_args(&argv(&["gen", "adder", "--bits", "0"])).is_err());
        let r = parse_args(&argv(&[
            "resynth",
            "x.bench",
            "--out",
            "y.bench",
            "--max-chains",
            "5",
            "--slack-margin",
            "2",
        ]))
        .unwrap();
        assert_eq!(r.out.as_deref(), Some("y.bench"));
        assert_eq!(r.max_chains, 5);
        assert_eq!(r.slack_margin, 2);
        // --seed stays None when absent so gen can tell.
        assert_eq!(parse_args(&argv(&["gen", "adder"])).unwrap().seed, None);
    }

    #[test]
    fn request_accepts_client_retry_flags() {
        let a = parse_args(&argv(&[
            "request",
            "x.bench",
            "--retries",
            "5",
            "--retry-budget-ms",
            "900",
        ]))
        .unwrap();
        assert_eq!(a.retries, 5);
        assert_eq!(a.retry_budget_ms, 900);
    }

    #[test]
    fn parses_a_full_serve_invocation() {
        let a = parse_args(&argv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-cap",
            "8",
            "--cache-dir",
            "/tmp/cache",
            "--max-timeout",
            "0.5",
            "--allow-hold",
            "--cancel-file",
            "stop.now",
        ]))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!(a.workers, 2);
        assert_eq!(a.queue_cap, 8);
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/cache"));
        assert_eq!(a.max_timeout, Duration::from_millis(500));
        assert!(a.allow_hold);
        assert_eq!(a.cancel_file.as_deref(), Some("stop.now"));
    }
}
