//! # xrta — exact required time analysis via false path detection
//!
//! Umbrella crate for the Rust reproduction of Kukimoto & Brayton,
//! *Exact Required Time Analysis via False Path Detection* (UCB/ERL
//! M97/44, 1997). It re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bdd`] | `xrta-bdd` | BDD package with minimal-element operators and sifting |
//! | [`sat`] | `xrta-sat` | CDCL SAT solver with assumptions and budgets |
//! | [`network`] | `xrta-network` | Boolean networks, BLIF/BENCH io, primes, cones |
//! | [`timing`] | `xrta-timing` | topological arrival/required/slack (Figure 3) |
//! | [`chi`] | `xrta-chi` | XBD0 χ-function analysis, BDD + SAT engines |
//! | [`core`] | `xrta-core` | the paper's §4 algorithms and §5 subcircuit flexibility |
//! | [`circuits`] | `xrta-circuits` | generators, worked examples, surrogate suite |
//! | [`verify`] | `xrta-verify` | exhaustive oracle, differential fuzzing, shrinking, corpus |
//! | [`robust`] | `xrta-robust` | failpoints, atomic writes, CRC'd journals, backoff |
//! | [`batch`] | `xrta-batch` | crash-resilient batch runner with checkpoint/resume |
//! | [`serve`] | `xrta-serve` | analysis daemon: result cache, single-flight, admission control |
//! | [`router`] | `xrta-router` | sharded serving: consistent-hash routing, health checks, hedging, drain |
//! | [`resynth`] | `xrta-resynth` | slack-guided AND-OR restructuring with verified equivalence |
//!
//! ## Quickstart: the paper's Figure 4
//!
//! ```
//! use xrta::prelude::*;
//!
//! let net = xrta::circuits::fig4();
//! // Topological analysis: both inputs required at 0. The paper's
//! // parametric analysis relaxes x2's settle-to-0 deadline to 1.
//! let analysis = approx1_required_times(
//!     &net, &UnitDelay, &[Time::new(2)], Approx1Options::default(),
//! ).unwrap();
//! assert!(analysis.has_nontrivial_requirement());
//! ```

pub mod cli;

pub use xrta_batch as batch;
pub use xrta_bdd as bdd;
pub use xrta_chi as chi;
pub use xrta_circuits as circuits;
pub use xrta_core as core;
pub use xrta_network as network;
pub use xrta_resynth as resynth;
pub use xrta_robust as robust;
pub use xrta_router as router;
pub use xrta_sat as sat;
pub use xrta_serve as serve;
pub use xrta_timing as timing;
pub use xrta_verify as verify;

/// Convenient glob import for applications.
pub mod prelude {
    pub use xrta_chi::{EngineKind, FunctionalTiming};
    pub use xrta_core::{
        approx1_required_times, approx2_required_times, exact_required_times, run_with_fallback,
        subcircuit_arrival_times, subcircuit_required_times, true_slack, AnalysisError,
        Approx1Options, Approx2Options, ArrivalFlexOptions, Budget, CacheStrategy, ExactOptions,
        RequiredTimeTuple, SessionAnswer, SessionOptions, SessionReport, ValueTimes, Verdict,
    };
    pub use xrta_network::{GateKind, Network, NodeId};
    pub use xrta_timing::{
        analyze, arrival_times, required_times, topological_delays, Time, UnitDelay,
    };
}
