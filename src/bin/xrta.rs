//! `xrta` — command-line front end for the required-time analyses.
//!
//! ```text
//! xrta stats     <netlist>                     structural statistics
//! xrta topo      <netlist> [--req T]           topological arrival/required/slack
//! xrta truedelay <netlist> [--engine bdd|sat]  functional (false-path) delays
//! xrta reqtime   <netlist> --algo exact|approx1|approx2|topological [--req T]
//!                [--timeout SECS] [--node-limit N] [--sat-conflicts N]
//!                [--fallback on|off]
//! xrta slack     <netlist> --node NAME [--req T]
//! xrta macro     <netlist> [--engine bdd|sat]  pin-to-pin macro-model
//! xrta fuzz      [--seeds N] [--max-inputs K] [--time-cap S]
//!                [--corpus DIR] [--base-seed B]
//! xrta batch     <manifest> [--journal P] [--report P] [--resume]
//!                [--seed S] [--max-retries N] [--backoff-base S]
//!                [--backoff-cap S] [--aggregate-timeout S] [--threads N]
//! ```
//!
//! Every command also accepts `--cancel-file PATH` (cooperative
//! cancellation: the run stops cleanly as soon as the file appears;
//! exit code `4`) and — in binaries built with `--features
//! failpoints` — `--failpoints SPEC` / `--failpoints-seed N` for
//! deterministic fault injection (the `XRTA_FAILPOINTS` /
//! `XRTA_FAILPOINTS_SEED` environment variables work everywhere).
//!
//! Netlists are BLIF (`.blif`) or ISCAS bench (`.bench`) files; all
//! analyses use the unit delay model, arrival 0 at every input, and a
//! shared required time (default: the topological delay) at every
//! output — the paper's experimental protocol, with `--req` to override.
//!
//! `reqtime` runs as a resource-governed session: `--timeout` gives each
//! rung a wall-clock allowance, `--node-limit` caps BDD nodes,
//! `--sat-conflicts` caps SAT conflicts per oracle query, and with
//! `--fallback on` (the default) an exhausted budget degrades down the
//! ladder exact → approx1 → approx2 → topological instead of failing.
//!
//! `fuzz` needs no netlist: it runs the differential verification
//! harness (`xrta-verify`) over `--seeds` random circuits with at most
//! `--max-inputs` primary inputs, checking every engine against the
//! exhaustive oracle. Failures are shrunk and filed as `.bench`
//! reproducers under `--corpus` (default `netlists/corpus`), and the
//! run exits `1`. `--time-cap` bounds the wall clock for CI.
//!
//! `batch` runs a whole manifest of jobs (one netlist per line, see
//! `xrta::batch::manifest`) under a crash-resilient journal: every
//! state transition is checkpointed to `--journal` before it takes
//! effect, transient failures retry with capped jittered backoff,
//! jobs that no longer fit `--aggregate-timeout` are shed, and after
//! a crash or cancellation `--resume` completes the run — producing a
//! report byte-identical to an uninterrupted one.
//!
//! Exit codes, uniform across commands:
//!
//! | code | meaning |
//! |---|---|
//! | `0` | full success: answered at the requested rung / all jobs done / no fuzz failures |
//! | `1` | the analysis itself failed: budget exhausted with `--fallback off`, fuzz failure found, journal corruption, panic |
//! | `2` | usage error: bad flags, unreadable netlist or manifest, journal exists without `--resume` |
//! | `3` | partial success: answered at a lower rung (degraded), or a batch finished with failed/shed jobs |
//! | `4` | cancelled cooperatively via `--cancel-file` (batch: the journal is resumable) |

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xrta::batch::{run_batch, BatchConfig, BatchError, BatchOptions};
use xrta::core::{failpoint, macro_model, report};
use xrta::network::{parse_bench, parse_blif, stats};
use xrta::prelude::*;
use xrta::robust::backoff::BackoffPolicy;
use xrta::verify;

enum Failure {
    /// Bad invocation or unreadable/unparsable netlist: exit 2.
    Usage(String),
    /// The analysis itself stopped short of an answer: exit 1.
    Analysis(AnalysisError),
    /// Infrastructure failure (journal/report I/O, corruption): exit 1.
    Fatal(String),
}

struct Args {
    command: String,
    path: Option<String>,
    req: Option<i64>,
    engine: EngineKind,
    algo: String,
    node: Option<String>,
    timeout: Option<Duration>,
    node_limit: Option<usize>,
    sat_conflicts: Option<u64>,
    fallback: bool,
    seeds: usize,
    max_inputs: usize,
    time_cap: Option<Duration>,
    corpus: Option<String>,
    base_seed: u64,
    // batch
    journal: Option<String>,
    report_path: Option<String>,
    resume: bool,
    seed: u64,
    max_retries: u32,
    backoff_base: Duration,
    backoff_cap: Duration,
    aggregate_timeout: Option<Duration>,
    threads: usize,
    // robustness (all commands)
    cancel_file: Option<String>,
    failpoints: Option<String>,
    failpoints_seed: u64,
}

fn parse_secs(flag: &str, value: Option<String>) -> Result<Duration, String> {
    let secs: f64 = value
        .ok_or(format!("{flag} needs a value (seconds)"))?
        .parse()
        .map_err(|e| format!("bad {flag}: {e}"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("bad {flag}: {secs} is not a duration"));
    }
    Ok(Duration::from_secs_f64(secs))
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    // `fuzz` generates its own circuits; `batch` takes a manifest;
    // every other command analyses a netlist given as the second
    // positional argument.
    let path = if command == "fuzz" {
        None
    } else if command == "batch" {
        Some(it.next().ok_or("missing manifest path")?)
    } else {
        Some(it.next().ok_or("missing netlist path")?)
    };
    let mut args = Args {
        command,
        path,
        req: None,
        engine: EngineKind::Sat,
        algo: "approx2".to_string(),
        node: None,
        timeout: None,
        node_limit: None,
        sat_conflicts: None,
        fallback: true,
        seeds: 100,
        max_inputs: 8,
        time_cap: None,
        corpus: None,
        base_seed: 0xF0CC,
        journal: None,
        report_path: None,
        resume: false,
        seed: 0x0BA7C4,
        max_retries: 2,
        backoff_base: Duration::from_millis(100),
        backoff_cap: Duration::from_secs(5),
        aggregate_timeout: None,
        threads: 1,
        cancel_file: None,
        failpoints: None,
        failpoints_seed: 0,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--req" => {
                args.req = Some(
                    it.next()
                        .ok_or("--req needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --req: {e}"))?,
                )
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("bdd") => EngineKind::Bdd,
                    Some("sat") => EngineKind::Sat,
                    other => return Err(format!("bad --engine {other:?}")),
                }
            }
            "--algo" => args.algo = it.next().ok_or("--algo needs a value")?,
            "--node" => args.node = Some(it.next().ok_or("--node needs a value")?),
            "--timeout" => args.timeout = Some(parse_secs("--timeout", it.next())?),
            "--node-limit" => {
                args.node_limit = Some(
                    it.next()
                        .ok_or("--node-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --node-limit: {e}"))?,
                )
            }
            "--sat-conflicts" => {
                args.sat_conflicts = Some(
                    it.next()
                        .ok_or("--sat-conflicts needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --sat-conflicts: {e}"))?,
                )
            }
            "--fallback" => {
                args.fallback = match it.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    other => return Err(format!("bad --fallback {other:?} (want on|off)")),
                }
            }
            "--seeds" => {
                args.seeds = it
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--max-inputs" => {
                let k: usize = it
                    .next()
                    .ok_or("--max-inputs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-inputs: {e}"))?;
                if !(2..=xrta::verify::MAX_ORACLE_INPUTS).contains(&k) {
                    return Err(format!(
                        "bad --max-inputs: {k} not in 2..={}",
                        xrta::verify::MAX_ORACLE_INPUTS
                    ));
                }
                args.max_inputs = k;
            }
            "--time-cap" => args.time_cap = Some(parse_secs("--time-cap", it.next())?),
            "--corpus" => args.corpus = Some(it.next().ok_or("--corpus needs a value")?),
            "--base-seed" => {
                args.base_seed = it
                    .next()
                    .ok_or("--base-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --base-seed: {e}"))?
            }
            "--journal" => args.journal = Some(it.next().ok_or("--journal needs a value")?),
            "--report" => args.report_path = Some(it.next().ok_or("--report needs a value")?),
            "--resume" => args.resume = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--max-retries" => {
                args.max_retries = it
                    .next()
                    .ok_or("--max-retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-retries: {e}"))?
            }
            "--backoff-base" => args.backoff_base = parse_secs("--backoff-base", it.next())?,
            "--backoff-cap" => args.backoff_cap = parse_secs("--backoff-cap", it.next())?,
            "--aggregate-timeout" => {
                args.aggregate_timeout = Some(parse_secs("--aggregate-timeout", it.next())?)
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--cancel-file" => {
                args.cancel_file = Some(it.next().ok_or("--cancel-file needs a value")?)
            }
            "--failpoints" => {
                args.failpoints = Some(it.next().ok_or("--failpoints needs a value")?)
            }
            "--failpoints-seed" => {
                args.failpoints_seed = it
                    .next()
                    .ok_or("--failpoints-seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --failpoints-seed: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".bench") {
        return parse_bench(&text).map_err(|e| format!("parsing {path} as bench: {e}"));
    }
    if path.ends_with(".blif") {
        return parse_blif(&text).map_err(|e| format!("parsing {path} as blif: {e}"));
    }
    // Unknown extension: sniff (BLIF starts with a dot directive), try
    // the likelier parser first, fall back to the other, and report
    // both diagnoses when neither fits.
    let blif_first = text.lines().any(|l| l.trim_start().starts_with(".model"));
    let as_blif = parse_blif(&text).map_err(|e| format!("as blif: {e}"));
    let as_bench = parse_bench(&text).map_err(|e| format!("as bench: {e}"));
    let (first, second) = if blif_first {
        (as_blif, as_bench)
    } else {
        (as_bench, as_blif)
    };
    first.or_else(|e1| second.map_err(|e2| format!("parsing {path} failed {e1} and {e2}")))
}

fn required_vector(net: &Network, req: Option<i64>) -> Vec<Time> {
    match req {
        Some(t) => vec![Time::new(t); net.outputs().len()],
        None => topological_delays(net, &UnitDelay),
    }
}

/// Watches for `path` to appear, raising the returned flag when it
/// does. The poll loop is a detached daemon thread; it dies with the
/// process.
fn cancel_flag_for(path: &str) -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    let watched = PathBuf::from(path);
    let raised = Arc::clone(&flag);
    std::thread::spawn(move || loop {
        if watched.exists() {
            raised.store(true, Ordering::Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    flag
}

fn run() -> Result<ExitCode, Failure> {
    let args = parse_args().map_err(Failure::Usage)?;
    // Deterministic fault injection: the environment arms first, an
    // explicit flag wins. `batch` instead re-arms per attempt with
    // per-(job, attempt) seeds, so its spec rides in BatchOptions.
    failpoint::arm_from_env().map_err(Failure::Usage)?;
    if args.command != "batch" {
        if let Some(spec) = &args.failpoints {
            failpoint::arm(spec, args.failpoints_seed).map_err(Failure::Usage)?;
        }
    }
    let cancel = args.cancel_file.as_deref().map(cancel_flag_for);
    if args.command == "fuzz" {
        return run_fuzz(&args, cancel);
    }
    if args.command == "batch" {
        return run_batch_cmd(&args, cancel);
    }
    let net = load(args.path.as_deref().expect("non-fuzz commands have a path"))
        .map_err(Failure::Usage)?;
    let zeros = vec![Time::ZERO; net.inputs().len()];
    match args.command.as_str() {
        "stats" => {
            let s = stats(&net);
            println!("name        : {}", net.name());
            println!("inputs      : {}", s.inputs);
            println!("outputs     : {}", s.outputs);
            println!("gates       : {}", s.gates);
            println!("max fanin   : {}", s.max_fanin);
            println!("depth       : {}", s.depth);
            println!("multi-fanout: {}", s.multi_fanout);
        }
        "topo" => {
            let req = required_vector(&net, args.req);
            let t = analyze(&net, &UnitDelay, &zeros, &req);
            println!("node | arrival | required | slack");
            for id in net.node_ids() {
                println!(
                    "{:<12} | {:>7} | {:>8} | {:>5}",
                    net.node(id).name,
                    t.arrival[id.index()],
                    t.required[id.index()],
                    t.slack(id)
                );
            }
        }
        "truedelay" => {
            let ft = FunctionalTiming::new(&net, &UnitDelay, zeros, args.engine);
            let topo = topological_delays(&net, &UnitDelay);
            println!("output | topological | true");
            for ((&o, topo_t), true_t) in net.outputs().iter().zip(&topo).zip(ft.true_arrivals()) {
                let marker = if true_t < *topo_t {
                    "  <-- false paths"
                } else {
                    ""
                };
                println!(
                    "{:<12} | {:>11} | {:>4}{}",
                    net.node(o).name,
                    topo_t,
                    true_t,
                    marker
                );
            }
        }
        "reqtime" => {
            let req = required_vector(&net, args.req);
            let requested = match args.algo.as_str() {
                "exact" => Verdict::Exact,
                "approx1" => Verdict::Approx1,
                "approx2" => Verdict::Approx2,
                "topological" | "topo" => Verdict::Topological,
                other => return Err(Failure::Usage(format!("unknown --algo {other:?}"))),
            };
            let mut budget = Budget::unlimited()
                .with_node_limit(args.node_limit)
                .with_sat_conflicts(args.sat_conflicts);
            if let Some(cancel) = &cancel {
                budget = budget.with_cancel_flag(Arc::clone(cancel));
            }
            let opts = SessionOptions {
                budget,
                timeout: args.timeout,
                fallback: args.fallback,
                approx2: Approx2Options {
                    engine: args.engine,
                    ..Approx2Options::default()
                },
                ..SessionOptions::default()
            };
            let mut session = run_with_fallback(&net, &UnitDelay, &req, requested, &opts)
                .map_err(Failure::Analysis)?;
            match &mut session.answer {
                SessionAnswer::Exact(a) => {
                    println!(
                        "exact relation over {} leaf variables; non-trivial: {}",
                        a.leaf_count(),
                        a.has_nontrivial_requirement()
                    );
                    if net.inputs().len() <= 6 {
                        for m in 0..(1usize << net.inputs().len()) {
                            let x: Vec<bool> =
                                (0..net.inputs().len()).map(|i| (m >> i) & 1 == 1).collect();
                            print!("{}", report::render_exact_minterm(&net, a, &x));
                        }
                    } else {
                        println!("(per-minterm tables suppressed beyond 6 inputs)");
                    }
                }
                SessionAnswer::Approx1(a) => print!("{}", report::render_approx1(&net, a)),
                SessionAnswer::Approx2(r) => print!("{}", report::render_approx2(&net, r)),
                SessionAnswer::Topological(at_inputs) => {
                    println!("input | topological required");
                    for (&pi, t) in net.inputs().iter().zip(at_inputs.iter()) {
                        println!("{:<12} | {}", net.node(pi).name, t);
                    }
                }
            }
            if session.degraded() {
                print!("{}", report::render_session_provenance(&session));
                let reason = session
                    .exhaustion_reason()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "budget exhausted".to_string());
                eprintln!(
                    "xrta: degraded: requested {}, answered {} ({reason})",
                    session.requested, session.verdict
                );
                return Ok(ExitCode::from(3));
            }
        }
        "slack" => {
            let name = args
                .node
                .ok_or_else(|| Failure::Usage("slack needs --node NAME".into()))?;
            let node = net
                .find(&name)
                .ok_or_else(|| Failure::Usage(format!("no node named {name:?}")))?;
            let req = required_vector(&net, args.req);
            let s = true_slack(&net, &UnitDelay, &zeros, &req, node, args.engine);
            println!("node      : {name}");
            println!("arrival   : {} (true)", s.arrival);
            println!("required  : {} (false-path-aware)", s.required);
            println!("slack     : {} (topological: {})", s.slack, s.topo_slack);
        }
        "macro" => {
            let m = macro_model(&net, &UnitDelay, args.engine);
            println!("pin-to-pin true delays ('d<t' = tightened vs topological):");
            print!("{:>10}", "");
            for o in &m.output_names {
                print!("{o:>10}");
            }
            println!();
            for (i, iname) in m.input_names.iter().enumerate() {
                print!("{iname:>10}");
                for o in 0..m.output_names.len() {
                    match (m.delay[i][o], m.topological[i][o]) {
                        (Some(d), Some(t)) if d < t => print!("{:>10}", format!("{d}<{t}")),
                        (Some(d), _) => print!("{d:>10}"),
                        (None, _) => print!("{:>10}", "·"),
                    }
                }
                println!();
            }
            println!("tightened pairs: {}", m.tightened_pairs());
        }
        other => return Err(Failure::Usage(format!("unknown command {other:?}"))),
    }
    Ok(ExitCode::SUCCESS)
}

fn run_fuzz(args: &Args, cancel: Option<Arc<AtomicBool>>) -> Result<ExitCode, Failure> {
    let corpus_dir = args
        .corpus
        .clone()
        .unwrap_or_else(|| "netlists/corpus".to_string());
    let opts = verify::FuzzOptions {
        seeds: args.seeds,
        base_seed: args.base_seed,
        max_inputs: args.max_inputs,
        time_cap: args.time_cap,
        corpus_dir: Some(std::path::PathBuf::from(&corpus_dir)),
        check: verify::CheckOptions::default(),
        cancel,
    };
    let report = verify::fuzz(&opts, |line| eprintln!("xrta: fuzz: {line}"));
    println!(
        "fuzz: {} of {} seeds run{} | base seed {:#x} | max inputs {} | {} failure(s)",
        report.seeds_run,
        args.seeds,
        if report.time_capped {
            " (time-capped)"
        } else {
            ""
        },
        args.base_seed,
        args.max_inputs,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at seed {}: {} | shrunk to {} gates{}",
            f.index,
            f.failures[0],
            f.shrunk.net.gate_count(),
            match &f.corpus_path {
                Some(p) => format!(" | filed {}", p.display()),
                None => String::new(),
            }
        );
    }
    if !report.failures.is_empty() {
        Ok(ExitCode::from(1))
    } else if report.cancelled {
        eprintln!("xrta: fuzz cancelled via --cancel-file");
        Ok(ExitCode::from(4))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_batch_cmd(args: &Args, cancel: Option<Arc<AtomicBool>>) -> Result<ExitCode, Failure> {
    let manifest = PathBuf::from(args.path.as_deref().expect("batch has a manifest path"));
    let journal = args
        .journal
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest.with_extension("journal"));
    let report = args
        .report_path
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest.with_extension("report.json"));
    let cfg = BatchConfig {
        manifest,
        journal,
        report,
        resume: args.resume,
        options: BatchOptions {
            seed: args.seed,
            backoff: BackoffPolicy {
                base: args.backoff_base,
                cap: args.backoff_cap,
                max_retries: args.max_retries,
            },
            aggregate_timeout: args.aggregate_timeout,
            default_timeout: args.timeout,
            fallback: args.fallback,
            engine: args.engine,
            threads: args.threads,
            failpoints: args.failpoints.clone(),
            cancel,
            stop_after_jobs: None,
        },
    };
    let summary = run_batch(&cfg).map_err(|e| match e {
        BatchError::Setup(msg) => Failure::Usage(msg),
        BatchError::Journal(msg) => Failure::Fatal(msg),
    })?;
    println!(
        "batch: {} jobs | {} done | {} failed | {} shed | {} pending",
        summary.jobs, summary.done, summary.failed, summary.shed, summary.pending
    );
    if let Some(p) = &summary.report_path {
        println!("batch: report written to {}", p.display());
    }
    if summary.interrupted {
        eprintln!(
            "xrta: batch cancelled via --cancel-file; resume with: xrta batch {} --resume",
            cfg.manifest.display()
        );
        return Ok(ExitCode::from(4));
    }
    if summary.failed > 0 || summary.shed > 0 {
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match std::panic::catch_unwind(run) {
        Ok(Ok(code)) => code,
        Ok(Err(Failure::Usage(e))) => {
            eprintln!("xrta: {e}");
            eprintln!(
                "usage: xrta <stats|topo|truedelay|reqtime|slack|macro> <netlist> \
                 [--req T] [--engine bdd|sat] [--algo exact|approx1|approx2|topological] \
                 [--node NAME] [--timeout SECS] [--node-limit N] [--sat-conflicts N] \
                 [--fallback on|off]\n       \
                 xrta fuzz [--seeds N] [--max-inputs K] [--time-cap S] [--corpus DIR] \
                 [--base-seed B]\n       \
                 xrta batch <manifest> [--journal P] [--report P] [--resume] [--seed S] \
                 [--max-retries N] [--backoff-base S] [--backoff-cap S] \
                 [--aggregate-timeout S] [--threads N]\n       \
                 (all commands: [--cancel-file PATH] [--failpoints SPEC] [--failpoints-seed N])"
            );
            ExitCode::from(2)
        }
        Ok(Err(Failure::Analysis(AnalysisError::Interrupted))) => {
            eprintln!("xrta: cancelled via --cancel-file");
            ExitCode::from(4)
        }
        Ok(Err(Failure::Analysis(e))) => {
            eprintln!("xrta: analysis failed: {e}");
            ExitCode::from(1)
        }
        Ok(Err(Failure::Fatal(e))) => {
            eprintln!("xrta: {e}");
            ExitCode::from(1)
        }
        Err(_) => {
            eprintln!("xrta: internal error: analysis panicked");
            ExitCode::from(1)
        }
    }
}
