//! `xrta` — command-line front end for the required-time analyses.
//!
//! ```text
//! xrta stats     <netlist>                     structural statistics
//! xrta topo      <netlist> [--req T]           topological arrival/required/slack
//! xrta truedelay <netlist> [--engine bdd|sat]  functional (false-path) delays
//! xrta reqtime   <netlist> --algo exact|approx1|approx2 [--req T]
//! xrta slack     <netlist> --node NAME [--req T]
//! xrta macro     <netlist> [--engine bdd|sat]  pin-to-pin macro-model
//! ```
//!
//! Netlists are BLIF (`.blif`) or ISCAS bench (`.bench`) files; all
//! analyses use the unit delay model, arrival 0 at every input, and a
//! shared required time (default: the topological delay) at every
//! output — the paper's experimental protocol, with `--req` to override.

use std::process::ExitCode;

use xrta::core::{macro_model, report};
use xrta::network::{parse_bench, parse_blif, stats};
use xrta::prelude::*;

struct Args {
    command: String,
    path: String,
    req: Option<i64>,
    engine: EngineKind,
    algo: String,
    node: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    let path = it.next().ok_or("missing netlist path")?;
    let mut args = Args {
        command,
        path,
        req: None,
        engine: EngineKind::Sat,
        algo: "approx2".to_string(),
        node: None,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--req" => {
                args.req = Some(
                    it.next()
                        .ok_or("--req needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --req: {e}"))?,
                )
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("bdd") => EngineKind::Bdd,
                    Some("sat") => EngineKind::Sat,
                    other => return Err(format!("bad --engine {other:?}")),
                }
            }
            "--algo" => args.algo = it.next().ok_or("--algo needs a value")?,
            "--node" => args.node = Some(it.next().ok_or("--node needs a value")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".bench") {
        parse_bench(&text).map_err(|e| e.to_string())
    } else if path.ends_with(".blif") {
        parse_blif(&text).map_err(|e| e.to_string())
    } else {
        // Sniff: BLIF starts with a dot directive.
        if text.lines().any(|l| l.trim_start().starts_with(".model")) {
            parse_blif(&text).map_err(|e| e.to_string())
        } else {
            parse_bench(&text).map_err(|e| e.to_string())
        }
    }
}

fn required_vector(net: &Network, req: Option<i64>) -> Vec<Time> {
    match req {
        Some(t) => vec![Time::new(t); net.outputs().len()],
        None => topological_delays(net, &UnitDelay),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let net = load(&args.path)?;
    let zeros = vec![Time::ZERO; net.inputs().len()];
    match args.command.as_str() {
        "stats" => {
            let s = stats(&net);
            println!("name        : {}", net.name());
            println!("inputs      : {}", s.inputs);
            println!("outputs     : {}", s.outputs);
            println!("gates       : {}", s.gates);
            println!("max fanin   : {}", s.max_fanin);
            println!("depth       : {}", s.depth);
            println!("multi-fanout: {}", s.multi_fanout);
        }
        "topo" => {
            let req = required_vector(&net, args.req);
            let t = analyze(&net, &UnitDelay, &zeros, &req);
            println!("node | arrival | required | slack");
            for id in net.node_ids() {
                println!(
                    "{:<12} | {:>7} | {:>8} | {:>5}",
                    net.node(id).name,
                    t.arrival[id.index()],
                    t.required[id.index()],
                    t.slack(id)
                );
            }
        }
        "truedelay" => {
            let ft = FunctionalTiming::new(&net, &UnitDelay, zeros, args.engine);
            let topo = topological_delays(&net, &UnitDelay);
            println!("output | topological | true");
            for ((&o, topo_t), true_t) in net.outputs().iter().zip(&topo).zip(ft.true_arrivals()) {
                let marker = if true_t < *topo_t {
                    "  <-- false paths"
                } else {
                    ""
                };
                println!(
                    "{:<12} | {:>11} | {:>4}{}",
                    net.node(o).name,
                    topo_t,
                    true_t,
                    marker
                );
            }
        }
        "reqtime" => {
            let req = required_vector(&net, args.req);
            match args.algo.as_str() {
                "exact" => {
                    let a = exact_required_times(&net, &UnitDelay, &req, ExactOptions::default())
                        .map_err(|e| e.to_string())?;
                    let mut a = a;
                    println!(
                        "exact relation over {} leaf variables; non-trivial: {}",
                        a.leaf_count(),
                        a.has_nontrivial_requirement()
                    );
                    if net.inputs().len() <= 6 {
                        for m in 0..(1usize << net.inputs().len()) {
                            let x: Vec<bool> =
                                (0..net.inputs().len()).map(|i| (m >> i) & 1 == 1).collect();
                            print!("{}", report::render_exact_minterm(&net, &mut a, &x));
                        }
                    } else {
                        println!("(per-minterm tables suppressed beyond 6 inputs)");
                    }
                }
                "approx1" => {
                    let a =
                        approx1_required_times(&net, &UnitDelay, &req, Approx1Options::default())
                            .map_err(|e| e.to_string())?;
                    print!("{}", report::render_approx1(&net, &a));
                }
                "approx2" => {
                    let r = approx2_required_times(
                        &net,
                        &UnitDelay,
                        &req,
                        Approx2Options {
                            engine: args.engine,
                            ..Approx2Options::default()
                        },
                    );
                    print!("{}", report::render_approx2(&net, &r));
                }
                other => return Err(format!("unknown --algo {other:?}")),
            }
        }
        "slack" => {
            let name = args.node.ok_or("slack needs --node NAME")?;
            let node = net
                .find(&name)
                .ok_or_else(|| format!("no node named {name:?}"))?;
            let req = required_vector(&net, args.req);
            let s = true_slack(&net, &UnitDelay, &zeros, &req, node, args.engine);
            println!("node      : {name}");
            println!("arrival   : {} (true)", s.arrival);
            println!("required  : {} (false-path-aware)", s.required);
            println!("slack     : {} (topological: {})", s.slack, s.topo_slack);
        }
        "macro" => {
            let m = macro_model(&net, &UnitDelay, args.engine);
            println!("pin-to-pin true delays ('d<t' = tightened vs topological):");
            print!("{:>10}", "");
            for o in &m.output_names {
                print!("{o:>10}");
            }
            println!();
            for (i, iname) in m.input_names.iter().enumerate() {
                print!("{iname:>10}");
                for o in 0..m.output_names.len() {
                    match (m.delay[i][o], m.topological[i][o]) {
                        (Some(d), Some(t)) if d < t => print!("{:>10}", format!("{d}<{t}")),
                        (Some(d), _) => print!("{d:>10}"),
                        (None, _) => print!("{:>10}", "·"),
                    }
                }
                println!();
            }
            println!("tightened pairs: {}", m.tightened_pairs());
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xrta: {e}");
            eprintln!(
                "usage: xrta <stats|topo|truedelay|reqtime|slack|macro> <netlist> \
                 [--req T] [--engine bdd|sat] [--algo exact|approx1|approx2] [--node NAME]"
            );
            ExitCode::from(2)
        }
    }
}
