//! `xrta` — command-line front end for the required-time analyses.
//!
//! ```text
//! xrta stats     <netlist>                     structural statistics
//! xrta topo      <netlist> [--req T]           topological arrival/required/slack
//! xrta truedelay <netlist> [--engine bdd|sat]  functional (false-path) delays
//! xrta reqtime   <netlist> --algo exact|approx1|approx2|topological [--req T]
//!                [--timeout SECS] [--node-limit N] [--sat-conflicts N]
//!                [--fallback on|off]
//! xrta slack     <netlist> --node NAME [--req T]
//! xrta macro     <netlist> [--engine bdd|sat]  pin-to-pin macro-model
//! ```
//!
//! Netlists are BLIF (`.blif`) or ISCAS bench (`.bench`) files; all
//! analyses use the unit delay model, arrival 0 at every input, and a
//! shared required time (default: the topological delay) at every
//! output — the paper's experimental protocol, with `--req` to override.
//!
//! `reqtime` runs as a resource-governed session: `--timeout` gives each
//! rung a wall-clock allowance, `--node-limit` caps BDD nodes,
//! `--sat-conflicts` caps SAT conflicts per oracle query, and with
//! `--fallback on` (the default) an exhausted budget degrades down the
//! ladder exact → approx1 → approx2 → topological instead of failing.
//!
//! Exit codes: `0` answered at the requested rung, `3` answered at a
//! lower rung (a one-line notice goes to stderr), `1` analysis failed
//! (budget exhausted with `--fallback off`, or cancelled), `2` usage or
//! netlist-loading error.

use std::process::ExitCode;
use std::time::Duration;

use xrta::core::{macro_model, report};
use xrta::network::{parse_bench, parse_blif, stats};
use xrta::prelude::*;

enum Failure {
    /// Bad invocation or unreadable/unparsable netlist: exit 2.
    Usage(String),
    /// The analysis itself stopped short of an answer: exit 1.
    Analysis(AnalysisError),
}

struct Args {
    command: String,
    path: String,
    req: Option<i64>,
    engine: EngineKind,
    algo: String,
    node: Option<String>,
    timeout: Option<Duration>,
    node_limit: Option<usize>,
    sat_conflicts: Option<u64>,
    fallback: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    let path = it.next().ok_or("missing netlist path")?;
    let mut args = Args {
        command,
        path,
        req: None,
        engine: EngineKind::Sat,
        algo: "approx2".to_string(),
        node: None,
        timeout: None,
        node_limit: None,
        sat_conflicts: None,
        fallback: true,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--req" => {
                args.req = Some(
                    it.next()
                        .ok_or("--req needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --req: {e}"))?,
                )
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("bdd") => EngineKind::Bdd,
                    Some("sat") => EngineKind::Sat,
                    other => return Err(format!("bad --engine {other:?}")),
                }
            }
            "--algo" => args.algo = it.next().ok_or("--algo needs a value")?,
            "--node" => args.node = Some(it.next().ok_or("--node needs a value")?),
            "--timeout" => {
                let secs: f64 = it
                    .next()
                    .ok_or("--timeout needs a value (seconds)")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad --timeout: {secs} is not a duration"));
                }
                args.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--node-limit" => {
                args.node_limit = Some(
                    it.next()
                        .ok_or("--node-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --node-limit: {e}"))?,
                )
            }
            "--sat-conflicts" => {
                args.sat_conflicts = Some(
                    it.next()
                        .ok_or("--sat-conflicts needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --sat-conflicts: {e}"))?,
                )
            }
            "--fallback" => {
                args.fallback = match it.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    other => return Err(format!("bad --fallback {other:?} (want on|off)")),
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".bench") {
        return parse_bench(&text).map_err(|e| format!("parsing {path} as bench: {e}"));
    }
    if path.ends_with(".blif") {
        return parse_blif(&text).map_err(|e| format!("parsing {path} as blif: {e}"));
    }
    // Unknown extension: sniff (BLIF starts with a dot directive), try
    // the likelier parser first, fall back to the other, and report
    // both diagnoses when neither fits.
    let blif_first = text.lines().any(|l| l.trim_start().starts_with(".model"));
    let as_blif = parse_blif(&text).map_err(|e| format!("as blif: {e}"));
    let as_bench = parse_bench(&text).map_err(|e| format!("as bench: {e}"));
    let (first, second) = if blif_first {
        (as_blif, as_bench)
    } else {
        (as_bench, as_blif)
    };
    first.or_else(|e1| second.map_err(|e2| format!("parsing {path} failed {e1} and {e2}")))
}

fn required_vector(net: &Network, req: Option<i64>) -> Vec<Time> {
    match req {
        Some(t) => vec![Time::new(t); net.outputs().len()],
        None => topological_delays(net, &UnitDelay),
    }
}

fn run() -> Result<ExitCode, Failure> {
    let args = parse_args().map_err(Failure::Usage)?;
    let net = load(&args.path).map_err(Failure::Usage)?;
    let zeros = vec![Time::ZERO; net.inputs().len()];
    match args.command.as_str() {
        "stats" => {
            let s = stats(&net);
            println!("name        : {}", net.name());
            println!("inputs      : {}", s.inputs);
            println!("outputs     : {}", s.outputs);
            println!("gates       : {}", s.gates);
            println!("max fanin   : {}", s.max_fanin);
            println!("depth       : {}", s.depth);
            println!("multi-fanout: {}", s.multi_fanout);
        }
        "topo" => {
            let req = required_vector(&net, args.req);
            let t = analyze(&net, &UnitDelay, &zeros, &req);
            println!("node | arrival | required | slack");
            for id in net.node_ids() {
                println!(
                    "{:<12} | {:>7} | {:>8} | {:>5}",
                    net.node(id).name,
                    t.arrival[id.index()],
                    t.required[id.index()],
                    t.slack(id)
                );
            }
        }
        "truedelay" => {
            let ft = FunctionalTiming::new(&net, &UnitDelay, zeros, args.engine);
            let topo = topological_delays(&net, &UnitDelay);
            println!("output | topological | true");
            for ((&o, topo_t), true_t) in net.outputs().iter().zip(&topo).zip(ft.true_arrivals()) {
                let marker = if true_t < *topo_t {
                    "  <-- false paths"
                } else {
                    ""
                };
                println!(
                    "{:<12} | {:>11} | {:>4}{}",
                    net.node(o).name,
                    topo_t,
                    true_t,
                    marker
                );
            }
        }
        "reqtime" => {
            let req = required_vector(&net, args.req);
            let requested = match args.algo.as_str() {
                "exact" => Verdict::Exact,
                "approx1" => Verdict::Approx1,
                "approx2" => Verdict::Approx2,
                "topological" | "topo" => Verdict::Topological,
                other => return Err(Failure::Usage(format!("unknown --algo {other:?}"))),
            };
            let opts = SessionOptions {
                budget: Budget::unlimited()
                    .with_node_limit(args.node_limit)
                    .with_sat_conflicts(args.sat_conflicts),
                timeout: args.timeout,
                fallback: args.fallback,
                approx2: Approx2Options {
                    engine: args.engine,
                    ..Approx2Options::default()
                },
                ..SessionOptions::default()
            };
            let mut session = run_with_fallback(&net, &UnitDelay, &req, requested, &opts)
                .map_err(Failure::Analysis)?;
            match &mut session.answer {
                SessionAnswer::Exact(a) => {
                    println!(
                        "exact relation over {} leaf variables; non-trivial: {}",
                        a.leaf_count(),
                        a.has_nontrivial_requirement()
                    );
                    if net.inputs().len() <= 6 {
                        for m in 0..(1usize << net.inputs().len()) {
                            let x: Vec<bool> =
                                (0..net.inputs().len()).map(|i| (m >> i) & 1 == 1).collect();
                            print!("{}", report::render_exact_minterm(&net, a, &x));
                        }
                    } else {
                        println!("(per-minterm tables suppressed beyond 6 inputs)");
                    }
                }
                SessionAnswer::Approx1(a) => print!("{}", report::render_approx1(&net, a)),
                SessionAnswer::Approx2(r) => print!("{}", report::render_approx2(&net, r)),
                SessionAnswer::Topological(at_inputs) => {
                    println!("input | topological required");
                    for (&pi, t) in net.inputs().iter().zip(at_inputs.iter()) {
                        println!("{:<12} | {}", net.node(pi).name, t);
                    }
                }
            }
            if session.degraded() {
                print!("{}", report::render_session_provenance(&session));
                let reason = session
                    .exhaustion_reason()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "budget exhausted".to_string());
                eprintln!(
                    "xrta: degraded: requested {}, answered {} ({reason})",
                    session.requested, session.verdict
                );
                return Ok(ExitCode::from(3));
            }
        }
        "slack" => {
            let name = args
                .node
                .ok_or_else(|| Failure::Usage("slack needs --node NAME".into()))?;
            let node = net
                .find(&name)
                .ok_or_else(|| Failure::Usage(format!("no node named {name:?}")))?;
            let req = required_vector(&net, args.req);
            let s = true_slack(&net, &UnitDelay, &zeros, &req, node, args.engine);
            println!("node      : {name}");
            println!("arrival   : {} (true)", s.arrival);
            println!("required  : {} (false-path-aware)", s.required);
            println!("slack     : {} (topological: {})", s.slack, s.topo_slack);
        }
        "macro" => {
            let m = macro_model(&net, &UnitDelay, args.engine);
            println!("pin-to-pin true delays ('d<t' = tightened vs topological):");
            print!("{:>10}", "");
            for o in &m.output_names {
                print!("{o:>10}");
            }
            println!();
            for (i, iname) in m.input_names.iter().enumerate() {
                print!("{iname:>10}");
                for o in 0..m.output_names.len() {
                    match (m.delay[i][o], m.topological[i][o]) {
                        (Some(d), Some(t)) if d < t => print!("{:>10}", format!("{d}<{t}")),
                        (Some(d), _) => print!("{d:>10}"),
                        (None, _) => print!("{:>10}", "·"),
                    }
                }
                println!();
            }
            println!("tightened pairs: {}", m.tightened_pairs());
        }
        other => return Err(Failure::Usage(format!("unknown command {other:?}"))),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match std::panic::catch_unwind(run) {
        Ok(Ok(code)) => code,
        Ok(Err(Failure::Usage(e))) => {
            eprintln!("xrta: {e}");
            eprintln!(
                "usage: xrta <stats|topo|truedelay|reqtime|slack|macro> <netlist> \
                 [--req T] [--engine bdd|sat] [--algo exact|approx1|approx2|topological] \
                 [--node NAME] [--timeout SECS] [--node-limit N] [--sat-conflicts N] \
                 [--fallback on|off]"
            );
            ExitCode::from(2)
        }
        Ok(Err(Failure::Analysis(e))) => {
            eprintln!("xrta: analysis failed: {e}");
            ExitCode::from(1)
        }
        Err(_) => {
            eprintln!("xrta: internal error: analysis panicked");
            ExitCode::from(1)
        }
    }
}
