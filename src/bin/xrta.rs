//! `xrta` — command-line front end for the required-time analyses.
//!
//! The subcommand/flag surface is declared in one table in
//! [`xrta::cli`]; the usage text printed on a usage error is generated
//! from it. Run any bad flag to see the full synopsis.
//!
//! Netlists are BLIF (`.blif`) or ISCAS bench (`.bench`) files; all
//! analyses use the unit delay model, arrival 0 at every input, and a
//! shared required time (default: the topological delay) at every
//! output — the paper's experimental protocol, with `--req` to override.
//!
//! `reqtime` runs as a resource-governed session: `--timeout` gives each
//! rung a wall-clock allowance, `--node-limit` caps BDD nodes,
//! `--sat-conflicts` caps SAT conflicts per oracle query, and with
//! `--fallback on` (the default) an exhausted budget degrades down the
//! ladder exact → approx1 → approx2 → topological instead of failing.
//!
//! `fuzz` needs no netlist: it runs the differential verification
//! harness (`xrta-verify`) over `--seeds` random circuits with at most
//! `--max-inputs` primary inputs, checking every engine against the
//! exhaustive oracle. Failures are shrunk and filed as `.bench`
//! reproducers under `--corpus` (default `netlists/corpus`), and the
//! run exits `1`. `--time-cap` bounds the wall clock for CI.
//!
//! `batch` runs a whole manifest of jobs (one netlist per line, see
//! `xrta::batch::manifest`) under a crash-resilient journal: every
//! state transition is checkpointed to `--journal` before it takes
//! effect, transient failures retry with capped jittered backoff,
//! jobs that no longer fit `--aggregate-timeout` are shed, and after
//! a crash or cancellation `--resume` completes the run — producing a
//! report byte-identical to an uninterrupted one.
//!
//! `serve` runs the analysis daemon (`xrta-serve`): a bounded worker
//! pool behind a bounded admission queue, a two-tier content-addressed
//! result cache (`--cache-dir` adds the disk tier), single-flight
//! deduplication, and graceful drain on `shutdown` requests or
//! `--cancel-file`. `request` is the matching client: it ships a
//! netlist to the daemon (or probes it with `--ping`, `--stats`,
//! `--shutdown`) and prints the answer; transient failures (connect
//! refused, `busy`) retry with jittered backoff under `--retries`
//! and `--retry-budget-ms`.
//!
//! `route` runs the cluster front-end (`xrta-router`): it
//! consistent-hashes requests across the `--shards` backends, health
//! checks them (ping probes, consecutive-failure ejection, half-open
//! reinstatement), fails over along the ring with seeded backoff,
//! hedges slow attempts after `--hedge-ms`, warms hot cache entries
//! onto the next replica, and answers `stats` probes with
//! cluster-aggregated counters. `xrta route drain HOST:PORT --addr
//! ROUTER` takes one shard out of rotation, waits out its in-flight
//! work, and shuts it down — the rolling-restart primitive.
//!
//! Exit codes, uniform across commands:
//!
//! | code | meaning |
//! |---|---|
//! | `0` | full success: answered at the requested rung / all jobs done / no fuzz failures / clean drain / shard drained |
//! | `1` | the analysis itself failed: budget exhausted with `--fallback off`, fuzz failure found, journal corruption, panic |
//! | `2` | usage error: bad flags, unreadable netlist or manifest, journal exists without `--resume` |
//! | `3` | partial success: answered at a lower rung (degraded), a batch finished with failed/shed jobs, or a request was shed |
//! | `4` | cancelled cooperatively via `--cancel-file` (batch: the journal is resumable) |

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use xrta::batch::{run_batch, BatchConfig, BatchError, BatchOptions};
use xrta::cli::{cancel_flag_for, parse_args, render_usage, required_vector, Args, DEFAULT_SEED};
use xrta::core::{failpoint, macro_model, report};
use xrta::network::{load_network_file, stats};
use xrta::prelude::*;
use xrta::resynth;
use xrta::robust::backoff::BackoffPolicy;
use xrta::router;
use xrta::serve;
use xrta::verify;

enum Failure {
    /// Bad invocation or unreadable/unparsable netlist: exit 2.
    Usage(String),
    /// The analysis itself stopped short of an answer: exit 1.
    Analysis(AnalysisError),
    /// Infrastructure failure (journal/report I/O, corruption): exit 1.
    Fatal(String),
}

fn run() -> Result<ExitCode, Failure> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv).map_err(Failure::Usage)?;
    // Deterministic fault injection: the environment arms first, an
    // explicit flag wins. `batch` instead re-arms per attempt with
    // per-(job, attempt) seeds, so its spec rides in BatchOptions.
    failpoint::arm_from_env().map_err(Failure::Usage)?;
    if args.command != "batch" {
        if let Some(spec) = &args.failpoints {
            failpoint::arm(spec, args.failpoints_seed).map_err(Failure::Usage)?;
        }
    }
    let cancel = args.cancel_file.as_deref().map(cancel_flag_for);
    match args.command.as_str() {
        "fuzz" => return run_fuzz(&args, cancel),
        "gen" => return run_gen(&args),
        "batch" => return run_batch_cmd(&args, cancel),
        "serve" => return run_serve(&args, cancel),
        "request" => return run_request(&args),
        "route" => return run_route(&args, cancel),
        _ => {}
    }
    let net = load_network_file(Path::new(
        args.path.as_deref().expect("netlist commands have a path"),
    ))
    .map_err(Failure::Usage)?;
    let zeros = vec![Time::ZERO; net.inputs().len()];
    match args.command.as_str() {
        "stats" => {
            let s = stats(&net);
            println!("name        : {}", net.name());
            println!("inputs      : {}", s.inputs);
            println!("outputs     : {}", s.outputs);
            println!("gates       : {}", s.gates);
            println!("max fanin   : {}", s.max_fanin);
            println!("depth       : {}", s.depth);
            println!("multi-fanout: {}", s.multi_fanout);
        }
        "topo" => {
            let req = required_vector(&net, args.req);
            let t = analyze(&net, &UnitDelay, &zeros, &req);
            println!("node | arrival | required | slack");
            for id in net.node_ids() {
                println!(
                    "{:<12} | {:>7} | {:>8} | {:>5}",
                    net.node(id).name,
                    t.arrival[id.index()],
                    t.required[id.index()],
                    t.slack(id)
                );
            }
        }
        "truedelay" => {
            let ft = FunctionalTiming::new(&net, &UnitDelay, zeros, args.engine);
            let topo = topological_delays(&net, &UnitDelay);
            println!("output | topological | true");
            for ((&o, topo_t), true_t) in net.outputs().iter().zip(&topo).zip(ft.true_arrivals()) {
                let marker = if true_t < *topo_t {
                    "  <-- false paths"
                } else {
                    ""
                };
                println!(
                    "{:<12} | {:>11} | {:>4}{}",
                    net.node(o).name,
                    topo_t,
                    true_t,
                    marker
                );
            }
        }
        "reqtime" => {
            let req = required_vector(&net, args.req);
            let requested: Verdict = args
                .algo
                .parse()
                .map_err(|_| Failure::Usage(format!("unknown --algo {:?}", args.algo)))?;
            let mut budget = Budget::unlimited()
                .with_node_limit(args.node_limit)
                .with_sat_conflicts(args.sat_conflicts)
                .with_mem_limit(args.mem_limit);
            if let Some(cancel) = &cancel {
                budget = budget.with_cancel_flag(Arc::clone(cancel));
            }
            let opts = SessionOptions {
                budget,
                timeout: args.timeout,
                fallback: args.fallback,
                approx2: Approx2Options {
                    engine: args.engine,
                    ..Approx2Options::default()
                },
                ..SessionOptions::default()
            };
            let mut session = run_with_fallback(&net, &UnitDelay, &req, requested, &opts)
                .map_err(Failure::Analysis)?;
            // `--report slack`: machine-readable per-PI/per-node slack
            // instead of the human rendering (degradation still exits 3,
            // with the reason on stderr so stdout stays valid JSON).
            let slack_json = args.report_path.as_deref() == Some("slack");
            if slack_json {
                print!("{}", render_slack_json(&net, &req, &session, args.engine));
            } else {
                render_session_human(&net, &mut session);
            }
            if session.degraded() {
                if !slack_json {
                    print!("{}", report::render_session_provenance(&session));
                }
                let reason = session
                    .exhaustion_reason()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "budget exhausted".to_string());
                eprintln!(
                    "xrta: degraded: requested {}, answered {} ({reason})",
                    session.requested, session.verdict
                );
                return Ok(ExitCode::from(3));
            }
        }
        "resynth" => {
            return run_resynth(
                &net,
                &args,
                cancel,
                Path::new(args.path.as_deref().expect("resynth has a path")),
            );
        }
        "slack" => {
            let name = args
                .node
                .ok_or_else(|| Failure::Usage("slack needs --node NAME".into()))?;
            let node = net
                .find(&name)
                .ok_or_else(|| Failure::Usage(format!("no node named {name:?}")))?;
            let req = required_vector(&net, args.req);
            let s = true_slack(&net, &UnitDelay, &zeros, &req, node, args.engine);
            println!("node      : {name}");
            println!("arrival   : {} (true)", s.arrival);
            println!("required  : {} (false-path-aware)", s.required);
            println!("slack     : {} (topological: {})", s.slack, s.topo_slack);
        }
        "macro" => {
            let m = macro_model(&net, &UnitDelay, args.engine);
            println!("pin-to-pin true delays ('d<t' = tightened vs topological):");
            print!("{:>10}", "");
            for o in &m.output_names {
                print!("{o:>10}");
            }
            println!();
            for (i, iname) in m.input_names.iter().enumerate() {
                print!("{iname:>10}");
                for o in 0..m.output_names.len() {
                    match (m.delay[i][o], m.topological[i][o]) {
                        (Some(d), Some(t)) if d < t => print!("{:>10}", format!("{d}<{t}")),
                        (Some(d), _) => print!("{d:>10}"),
                        (None, _) => print!("{:>10}", "·"),
                    }
                }
                println!();
            }
            println!("tightened pairs: {}", m.tightened_pairs());
        }
        other => return Err(Failure::Usage(format!("unknown command {other:?}"))),
    }
    Ok(ExitCode::SUCCESS)
}

/// The classic human rendering of a session answer (everything but
/// `--report slack`).
fn render_session_human(net: &Network, session: &mut SessionReport) {
    match &mut session.answer {
        SessionAnswer::Exact(a) => {
            println!(
                "exact relation over {} leaf variables; non-trivial: {}",
                a.leaf_count(),
                a.has_nontrivial_requirement()
            );
            if net.inputs().len() <= 6 {
                for m in 0..(1usize << net.inputs().len()) {
                    let x: Vec<bool> = (0..net.inputs().len()).map(|i| (m >> i) & 1 == 1).collect();
                    print!("{}", report::render_exact_minterm(net, a, &x));
                }
            } else {
                println!("(per-minterm tables suppressed beyond 6 inputs)");
            }
        }
        SessionAnswer::Approx1(a) => print!("{}", report::render_approx1(net, a)),
        SessionAnswer::Approx2(r) => print!("{}", report::render_approx2(net, r)),
        SessionAnswer::Topological(at_inputs) => {
            println!("input | topological required");
            for (&pi, t) in net.inputs().iter().zip(at_inputs.iter()) {
                println!("{:<12} | {}", net.node(pi).name, t);
            }
        }
    }
}

/// A [`Time`] as a JSON value: finite ticks as a number, the infinities
/// as the corpus string tokens.
fn json_time(t: Time) -> String {
    if t.is_inf() {
        "\"INF\"".to_string()
    } else if t.is_neg_inf() {
        "\"-INF\"".to_string()
    } else {
        t.ticks().to_string()
    }
}

/// `reqtime --report slack`: the whole slack picture as JSON — the
/// session verdict, per-input required-time points, per-node
/// topological arrival/required/slack, and per-output true
/// (false-path-aware) arrival and slack.
fn render_slack_json(
    net: &Network,
    req: &[Time],
    session: &SessionReport,
    engine: EngineKind,
) -> String {
    use std::fmt::Write as _;
    let esc = xrta::robust::jsonflat::escape;
    let zeros = vec![Time::ZERO; net.inputs().len()];
    let topo = analyze(net, &UnitDelay, &zeros, req);
    let ft = FunctionalTiming::new(net, &UnitDelay, zeros.clone(), engine);
    let true_arr = ft.true_arrivals();
    let points: Vec<Vec<Time>> = match &session.answer {
        SessionAnswer::Approx2(r) => r.maximal.clone(),
        SessionAnswer::Topological(v) => vec![v.clone()],
        _ => Vec::new(),
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"netlist\": \"{}\",", esc(net.name()));
    let _ = writeln!(out, "  \"requested\": \"{}\",", session.requested);
    let _ = writeln!(out, "  \"verdict\": \"{}\",", session.verdict);
    let _ = writeln!(out, "  \"degraded\": {},", session.degraded());
    let _ = writeln!(
        out,
        "  \"required\": [{}],",
        req.iter()
            .map(|&t| json_time(t))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let inputs: Vec<String> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(pos, &pi)| {
            let pts: Vec<String> = points.iter().map(|p| json_time(p[pos])).collect();
            format!(
                "    {{\"name\": \"{}\", \"topological_required\": {}, \"points\": [{}]}}",
                esc(&net.node(pi).name),
                json_time(topo.required[pi.index()]),
                pts.join(", ")
            )
        })
        .collect();
    let _ = writeln!(out, "  \"inputs\": [\n{}\n  ],", inputs.join(",\n"));
    let outputs: Vec<String> = net
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            let slack = if req[i].is_finite() && true_arr[i].is_finite() {
                Time::new(req[i].ticks() - true_arr[i].ticks())
            } else if true_arr[i].is_neg_inf() || req[i].is_inf() {
                Time::INF
            } else {
                Time::NEG_INF
            };
            format!(
                "    {{\"name\": \"{}\", \"true_arrival\": {}, \"true_slack\": {}}}",
                esc(&net.node(o).name),
                json_time(true_arr[i]),
                json_time(slack)
            )
        })
        .collect();
    let _ = writeln!(out, "  \"outputs\": [\n{}\n  ],", outputs.join(",\n"));
    let nodes: Vec<String> = net
        .node_ids()
        .map(|id| {
            format!(
                "    {{\"name\": \"{}\", \"arrival\": {}, \"required\": {}, \"slack\": {}}}",
                esc(&net.node(id).name),
                json_time(topo.arrival[id.index()]),
                json_time(topo.required[id.index()]),
                json_time(topo.slack(id))
            )
        })
        .collect();
    let _ = writeln!(out, "  \"nodes\": [\n{}\n  ]", nodes.join(",\n"));
    out.push_str("}\n");
    out
}

/// `xrta resynth`: run the slack-guided restructuring pipeline, print
/// the provenance table, and (with `--out`) write the resulting
/// netlist — the *original bytes* whenever nothing improved or the
/// budget degraded the run, so re-runs are byte-stable.
fn run_resynth(
    net: &Network,
    args: &Args,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    input: &Path,
) -> Result<ExitCode, Failure> {
    let mut budget = Budget::unlimited()
        .with_node_limit(args.node_limit)
        .with_sat_conflicts(args.sat_conflicts)
        .with_mem_limit(args.mem_limit);
    if let Some(t) = args.timeout {
        budget = budget.with_timeout(t);
    }
    if let Some(cancel) = &cancel {
        budget = budget.with_cancel_flag(Arc::clone(cancel));
    }
    let opts = resynth::ResynthOptions {
        engine: args.engine,
        budget,
        required: args.req.map(|t| vec![Time::new(t); net.outputs().len()]),
        slack_margin: Time::new(args.slack_margin),
        max_chains: args.max_chains,
        ..resynth::ResynthOptions::default()
    };
    let report = resynth::resynthesize(net, &resynth::DelaySpec::unit(), &opts);
    print!("{}", report.render());
    if let Some(out) = &args.out {
        if report.changed && report.degraded.is_none() {
            std::fs::write(out, xrta::network::write_bench(&report.net))
                .map_err(|e| Failure::Fatal(format!("writing {out}: {e}")))?;
        } else {
            // No accepted rewrite (or a degraded run): emit the input
            // bytes verbatim so a re-run is byte-identical.
            let bytes = std::fs::read(input)
                .map_err(|e| Failure::Fatal(format!("re-reading {}: {e}", input.display())))?;
            std::fs::write(out, bytes)
                .map_err(|e| Failure::Fatal(format!("writing {out}: {e}")))?;
        }
        println!("resynth: wrote {out}");
    }
    if let Some(e) = &report.degraded {
        eprintln!("xrta: resynth degraded: {e}; original netlist preserved");
        if matches!(e, AnalysisError::Interrupted) {
            return Ok(ExitCode::from(4));
        }
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

/// `xrta gen`: emit a generated netlist family member. With `--seed`
/// the header carries corpus-style seeded delay-override directives so
/// the file doubles as a fuzz/corpus base.
fn run_gen(args: &Args) -> Result<ExitCode, Failure> {
    let family = args.path.as_deref().expect("gen has a family argument");
    let net = match family {
        "adder" => if args.bypass > 0 {
            xrta::circuits::carry_skip_adder(args.bits, args.bypass)
        } else {
            xrta::circuits::ripple_carry_adder(args.bits)
        }
        .map_err(|e| Failure::Usage(format!("gen adder: {e}")))?,
        other => {
            return Err(Failure::Usage(format!(
                "unknown gen family {other:?} (expected: adder)"
            )))
        }
    };
    let text = match args.seed {
        None => xrta::network::write_bench(&net),
        Some(seed) => {
            // Seeded sparse delay overrides, filed as a corpus entry so
            // replay tools agree on the model.
            let mut rng = xrta_rng::Rng::seed_from_u64(seed);
            let names: Vec<String> = net.node_ids().map(|id| net.node(id).name.clone()).collect();
            let mut delays = std::collections::BTreeMap::new();
            for _ in 0..names.len().min(6) {
                let pick = rng.range(0, names.len());
                delays.insert(names[pick].clone(), rng.range_i64(2, 5));
            }
            let req = topological_delays(&net, &UnitDelay);
            let entry = verify::CorpusEntry {
                case: verify::TestCase { net, req },
                delays,
                origin: format!(
                    "gen {family} bits {} bypass {} seed {seed}",
                    args.bits, args.bypass
                ),
            };
            verify::to_bench(&entry)
        }
    };
    match &args.out {
        Some(out) => {
            std::fs::write(out, &text)
                .map_err(|e| Failure::Fatal(format!("writing {out}: {e}")))?;
            eprintln!("gen: wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `xrta fuzz --resynth N`: the resynthesis differential — seeded
/// netlists and delay perturbations, equivalence re-judged by the
/// exhaustive oracle and true delay by fresh per-output timing runs.
fn run_resynth_fuzz(
    args: &Args,
    seeds: usize,
    corpus_dir: &str,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    let opts = verify::ResynthFuzzOptions {
        seeds,
        base_seed: args.base_seed,
        max_inputs: args.max_inputs,
        time_cap: args.time_cap,
        corpus_dir: Some(std::path::PathBuf::from(corpus_dir)),
        cancel,
    };
    let report = verify::resynth_fuzz(&opts, |line| eprintln!("xrta: fuzz: {line}"));
    println!(
        "fuzz: {} of {} resynth seeds run{} | {} changed | base seed {:#x} | {} failure(s)",
        report.seeds_run,
        seeds,
        if report.time_capped {
            " (time-capped)"
        } else {
            ""
        },
        report.changed,
        args.base_seed,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at seed {}: {} | shrunk to {} gates{}",
            f.index,
            f.checks.join("; "),
            f.shrunk_gates,
            match &f.corpus_paths {
                Some((p, q)) => format!(" | filed {} + {}", p.display(), q.display()),
                None => String::new(),
            }
        );
    }
    if !report.failures.is_empty() {
        Ok(ExitCode::from(1))
    } else if report.cancelled {
        eprintln!("xrta: fuzz cancelled via --cancel-file");
        Ok(ExitCode::from(4))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_fuzz(
    args: &Args,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    let corpus_dir = args
        .corpus
        .clone()
        .unwrap_or_else(|| "netlists/corpus".to_string());
    if let Some(sequences) = args.edits {
        return run_eco_fuzz(args, sequences, &corpus_dir, cancel);
    }
    if let Some(seeds) = args.resynth {
        return run_resynth_fuzz(args, seeds, &corpus_dir, cancel);
    }
    let opts = verify::FuzzOptions {
        seeds: args.seeds,
        base_seed: args.base_seed,
        max_inputs: args.max_inputs,
        time_cap: args.time_cap,
        corpus_dir: Some(std::path::PathBuf::from(&corpus_dir)),
        check: verify::CheckOptions {
            mem_limit: args.mem_limit,
            ..verify::CheckOptions::default()
        },
        cancel,
    };
    let report = verify::fuzz(&opts, |line| eprintln!("xrta: fuzz: {line}"));
    println!(
        "fuzz: {} of {} seeds run{} | base seed {:#x} | max inputs {} | {} failure(s)",
        report.seeds_run,
        args.seeds,
        if report.time_capped {
            " (time-capped)"
        } else {
            ""
        },
        args.base_seed,
        args.max_inputs,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at seed {}: {} | shrunk to {} gates{}",
            f.index,
            f.failures[0],
            f.shrunk.net.gate_count(),
            match &f.corpus_path {
                Some(p) => format!(" | filed {}", p.display()),
                None => String::new(),
            }
        );
    }
    if !report.failures.is_empty() {
        Ok(ExitCode::from(1))
    } else if report.cancelled {
        eprintln!("xrta: fuzz cancelled via --cancel-file");
        Ok(ExitCode::from(4))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// `xrta fuzz --edits N`: the ECO differential — seeded edit scripts
/// over corpus and random bases, checking after every edit that a warm
/// fingerprint-keyed cone cache splices the byte-identical report a
/// cold from-scratch analysis produces.
fn run_eco_fuzz(
    args: &Args,
    sequences: usize,
    corpus_dir: &str,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    let opts = verify::EcoFuzzOptions {
        sequences,
        base_seed: args.base_seed,
        max_inputs: args.max_inputs,
        time_cap: args.time_cap,
        corpus_dir: Some(std::path::PathBuf::from(corpus_dir)),
        cancel,
    };
    let report = verify::eco_fuzz(&opts, |line| eprintln!("xrta: fuzz: {line}"));
    println!(
        "fuzz: {} of {} edit sequences run{} | {} edits applied | base seed {:#x} | {} failure(s)",
        report.sequences_run,
        sequences,
        if report.time_capped {
            " (time-capped)"
        } else {
            ""
        },
        report.edits_applied,
        args.base_seed,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at sequence {}: diverged at step {} | {} edit(s): {}{}",
            f.index,
            f.step,
            f.edits.len(),
            f.edits
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
            match &f.corpus_paths {
                Some((b, a)) => format!(" | filed {} + {}", b.display(), a.display()),
                None => String::new(),
            }
        );
    }
    if !report.failures.is_empty() {
        Ok(ExitCode::from(1))
    } else if report.cancelled {
        eprintln!("xrta: fuzz cancelled via --cancel-file");
        Ok(ExitCode::from(4))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_batch_cmd(
    args: &Args,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    let manifest = PathBuf::from(args.path.as_deref().expect("batch has a manifest path"));
    let journal = args
        .journal
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest.with_extension("journal"));
    let report = args
        .report_path
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| manifest.with_extension("report.json"));
    let cfg = BatchConfig {
        manifest,
        journal,
        report,
        resume: args.resume,
        options: BatchOptions {
            seed: args.seed.unwrap_or(DEFAULT_SEED),
            backoff: BackoffPolicy {
                base: args.backoff_base,
                cap: args.backoff_cap,
                max_retries: args.max_retries,
            },
            aggregate_timeout: args.aggregate_timeout,
            default_timeout: args.timeout,
            fallback: args.fallback,
            engine: args.engine,
            threads: args.threads,
            failpoints: args.failpoints.clone(),
            route: args.route.clone(),
            cancel,
            stop_after_jobs: None,
            mem_limit: args.mem_limit,
        },
    };
    let summary = run_batch(&cfg).map_err(|e| match e {
        BatchError::Setup(msg) => Failure::Usage(msg),
        BatchError::Journal(msg) => Failure::Fatal(msg),
    })?;
    println!(
        "batch: {} jobs | {} done | {} failed | {} shed | {} pending",
        summary.jobs, summary.done, summary.failed, summary.shed, summary.pending
    );
    if let Some(p) = &summary.report_path {
        println!("batch: report written to {}", p.display());
    }
    if summary.interrupted {
        eprintln!(
            "xrta: batch cancelled via --cancel-file; resume with: xrta batch {} --resume",
            cfg.manifest.display()
        );
        return Ok(ExitCode::from(4));
    }
    if summary.failed > 0 || summary.shed > 0 {
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

/// `xrta serve`: run the daemon until a `shutdown` request or the
/// cancel file drains it, then print the final stats line.
fn run_serve(
    args: &Args,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    let options = serve::ServeOptions {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_cap: args.queue_cap,
        mem_cache_cap: args.mem_cache,
        cache_dir: args.cache_dir.clone().map(PathBuf::from),
        max_timeout: args.max_timeout,
        max_node_limit: args.node_limit.map(|n| n as u64).unwrap_or(1 << 22),
        max_sat_conflicts: args.sat_conflicts.unwrap_or(1 << 20),
        mem_limit: args.mem_limit,
        allow_hold: args.allow_hold,
        drain_deadline: args.drain_deadline,
        cancel,
        ..serve::ServeOptions::default()
    };
    let handle = serve::start(options).map_err(|e| Failure::Fatal(format!("serve: {e}")))?;
    // Scripts parse this line for the ephemeral port; flush so they
    // see it before the first request.
    println!("xrta: serving on {}", handle.addr());
    if handle.torn_discarded() > 0 {
        eprintln!(
            "xrta: serve: discarded {} torn cache entr{} on startup",
            handle.torn_discarded(),
            if handle.torn_discarded() == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let final_stats = handle.join();
    println!("{}", final_stats.render_line());
    Ok(ExitCode::SUCCESS)
}

/// `xrta request`: one query (or probe) against a running daemon.
fn run_request(args: &Args) -> Result<ExitCode, Failure> {
    let request = if args.ping_probe {
        serve::Request::Ping
    } else if args.stats_probe {
        serve::Request::Stats
    } else if args.shutdown_probe {
        serve::Request::Shutdown
    } else {
        let path = args
            .path
            .as_deref()
            .ok_or_else(|| Failure::Usage("request needs a netlist (or a probe flag)".into()))?;
        let netlist = std::fs::read_to_string(path)
            .map_err(|e| Failure::Usage(format!("reading {path}: {e}")))?;
        let name = Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string());
        let algo: Verdict = args
            .algo
            .parse()
            .map_err(|_| Failure::Usage(format!("unknown --algo {:?}", args.algo)))?;
        let analyze = serve::AnalyzeRequest {
            name,
            netlist,
            algo,
            engine: args.engine,
            req: args.req.map(|t| vec![Time::new(t)]).unwrap_or_default(),
            timeout_ms: args.timeout.map(|t| t.as_millis() as u64),
            node_limit: args.node_limit.map(|n| n as u64),
            sat_conflicts: args.sat_conflicts,
            mem_limit: args.mem_limit,
            hold_ms: args.hold_ms,
        };
        if args.delta {
            serve::Request::Delta(analyze)
        } else {
            serve::Request::Analyze(analyze)
        }
    };
    // Connect-refused and `busy` are transient when shards restart or
    // shed load; retry them under a jittered-backoff budget so scripts
    // survive a rolling drain without their own retry loops.
    let retry = serve::RetryOptions {
        policy: BackoffPolicy {
            max_retries: args.retries,
            ..serve::RetryOptions::default().policy
        },
        budget: Some(std::time::Duration::from_millis(args.retry_budget_ms)),
        seed: args.seed.unwrap_or(DEFAULT_SEED),
    };
    let response = serve::roundtrip_retry(args.addr.as_str(), &request, &retry)
        .map_err(|e| Failure::Fatal(format!("request to {}: {e}", args.addr)))?;
    match &response {
        serve::Response::Pong => println!("pong"),
        serve::Response::Busy { reason } => match reason {
            serve::BusyReason::Queue => {
                eprintln!("xrta: server busy (queue full); retry later")
            }
            serve::BusyReason::Memory => {
                eprintln!("xrta: server busy (memory pressure); retry later")
            }
        },
        serve::Response::ShuttingDown => println!("server shutting down"),
        serve::Response::Drained { shard } => println!("drained {shard}"),
        serve::Response::Error(e) => eprintln!("xrta: server error: {e}"),
        serve::Response::Stats(s) => {
            println!("{}", s.render_line());
            println!(
                "cache: {} mem hits | {} disk hits | {} misses | {} computations",
                s.hits_mem, s.hits_disk, s.misses, s.computations
            );
            println!(
                "load : {} in flight | {} queued | {} answered",
                s.in_flight, s.queue_depth, s.answered
            );
        }
        serve::Response::Answer(a) => {
            println!(
                "verdict    : {}{}",
                a.verdict,
                if a.degraded() {
                    format!(" (requested {})", a.requested)
                } else {
                    String::new()
                }
            );
            println!("nontrivial : {}", a.nontrivial);
            if !a.degraded_reason.is_empty() {
                println!("degraded   : {}", a.degraded_reason);
            }
            for point in &a.points {
                let rendered: Vec<String> = point.iter().map(|t| t.to_string()).collect();
                println!("point      : {}", rendered.join(" "));
            }
        }
    }
    // A `shutting_down` ack is the *expected* outcome of the
    // shutdown probe, not a shed request.
    if args.shutdown_probe && response == serve::Response::ShuttingDown {
        return Ok(ExitCode::SUCCESS);
    }
    Ok(ExitCode::from(serve::answer_exit_code(&response)))
}

/// `xrta route`: run the consistent-hash router over `--shards`, or —
/// with the `drain` verb — ask a running router to take one shard out
/// of rotation, wait out its in-flight work and shut it down.
fn run_route(
    args: &Args,
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> Result<ExitCode, Failure> {
    match args.path.as_deref() {
        Some("drain") => {
            let shard = args.path2.clone().ok_or_else(|| {
                Failure::Usage(
                    "route drain needs the shard address: xrta route drain HOST:PORT --addr ROUTER"
                        .into(),
                )
            })?;
            let retry = serve::RetryOptions {
                policy: BackoffPolicy {
                    max_retries: args.retries,
                    ..serve::RetryOptions::default().policy
                },
                budget: Some(std::time::Duration::from_millis(args.retry_budget_ms)),
                seed: args.seed.unwrap_or(DEFAULT_SEED),
            };
            let request = serve::Request::Drain {
                shard: shard.clone(),
            };
            let response = serve::roundtrip_retry(args.addr.as_str(), &request, &retry)
                .map_err(|e| Failure::Fatal(format!("drain via {}: {e}", args.addr)))?;
            match &response {
                serve::Response::Drained { shard } => {
                    println!("drained {shard}");
                    Ok(ExitCode::SUCCESS)
                }
                serve::Response::Error(e) => {
                    eprintln!("xrta: drain failed: {e}");
                    Ok(ExitCode::from(1))
                }
                other => {
                    eprintln!("xrta: drain got an unexpected response: {other:?}");
                    Ok(ExitCode::from(1))
                }
            }
        }
        Some(other) => Err(Failure::Usage(format!(
            "unknown route verb {other:?} (expected: drain)"
        ))),
        None => {
            let shards: Vec<String> = args
                .shards
                .as_deref()
                .ok_or_else(|| {
                    Failure::Usage("route needs --shards HOST:PORT,HOST:PORT,...".into())
                })?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let options = router::RouterOptions {
                addr: args.addr.clone(),
                shards,
                probe_interval: args.probe_interval,
                health: router::HealthPolicy {
                    eject_after: args.eject_after,
                    cooldown: args.cooldown,
                    ..router::HealthPolicy::default()
                },
                hedge_after: std::time::Duration::from_millis(args.hedge_ms),
                warm_hits: args.warm_hits,
                retry: BackoffPolicy {
                    max_retries: args.retries,
                    ..router::RouterOptions::default().retry
                },
                retry_budget: Some(std::time::Duration::from_millis(args.retry_budget_ms)),
                seed: args.seed.unwrap_or(DEFAULT_SEED),
                drain_deadline: args.drain_deadline,
                cancel,
                ..router::RouterOptions::default()
            };
            let handle =
                router::start(options).map_err(|e| Failure::Fatal(format!("route: {e}")))?;
            // Scripts parse this line for the ephemeral port; flush so
            // they see it before the first request.
            println!(
                "xrta: routing on {} ({} shards)",
                handle.addr(),
                handle.shard_count()
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            let snapshot = handle.join();
            println!("{}", snapshot.render_line());
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    match std::panic::catch_unwind(run) {
        Ok(Ok(code)) => code,
        Ok(Err(Failure::Usage(e))) => {
            eprintln!("xrta: {e}");
            eprint!("{}", render_usage());
            ExitCode::from(2)
        }
        Ok(Err(Failure::Analysis(AnalysisError::Interrupted))) => {
            eprintln!("xrta: cancelled via --cancel-file");
            ExitCode::from(4)
        }
        Ok(Err(Failure::Analysis(e))) => {
            eprintln!("xrta: analysis failed: {e}");
            ExitCode::from(1)
        }
        Ok(Err(Failure::Fatal(e))) => {
            eprintln!("xrta: {e}");
            ExitCode::from(1)
        }
        Err(_) => {
            eprintln!("xrta: internal error: analysis panicked");
            ExitCode::from(1)
        }
    }
}
