/root/repo/target/release/deps/xrta_chi-e1c7eb260ec1ef6d.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/release/deps/libxrta_chi-e1c7eb260ec1ef6d.rlib: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/release/deps/libxrta_chi-e1c7eb260ec1ef6d.rmeta: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
