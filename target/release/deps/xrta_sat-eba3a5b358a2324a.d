/root/repo/target/release/deps/xrta_sat-eba3a5b358a2324a.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libxrta_sat-eba3a5b358a2324a.rlib: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/libxrta_sat-eba3a5b358a2324a.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/lit.rs:
crates/sat/src/solver.rs:
