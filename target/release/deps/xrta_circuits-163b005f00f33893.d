/root/repo/target/release/deps/xrta_circuits-163b005f00f33893.d: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

/root/repo/target/release/deps/xrta_circuits-163b005f00f33893: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adders.rs:
crates/circuits/src/chains.rs:
crates/circuits/src/examples.rs:
crates/circuits/src/mult.rs:
crates/circuits/src/random_dag.rs:
crates/circuits/src/suite.rs:
