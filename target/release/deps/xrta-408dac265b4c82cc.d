/root/repo/target/release/deps/xrta-408dac265b4c82cc.d: src/bin/xrta.rs

/root/repo/target/release/deps/xrta-408dac265b4c82cc: src/bin/xrta.rs

src/bin/xrta.rs:
