/root/repo/target/release/deps/xrta_rng-dff093cde1fb32bc.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/xrta_rng-dff093cde1fb32bc: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
