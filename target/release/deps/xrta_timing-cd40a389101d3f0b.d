/root/repo/target/release/deps/xrta_timing-cd40a389101d3f0b.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/release/deps/libxrta_timing-cd40a389101d3f0b.rlib: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/release/deps/libxrta_timing-cd40a389101d3f0b.rmeta: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
