/root/repo/target/release/deps/bdd_ops-fae6cb0dc48697c9.d: crates/bench/benches/bdd_ops.rs

/root/repo/target/release/deps/bdd_ops-fae6cb0dc48697c9: crates/bench/benches/bdd_ops.rs

crates/bench/benches/bdd_ops.rs:
