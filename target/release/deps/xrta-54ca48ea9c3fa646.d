/root/repo/target/release/deps/xrta-54ca48ea9c3fa646.d: src/lib.rs

/root/repo/target/release/deps/xrta-54ca48ea9c3fa646: src/lib.rs

src/lib.rs:
