/root/repo/target/release/deps/table1-f517fff0eac86f33.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f517fff0eac86f33: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
