/root/repo/target/release/deps/table2-b3917114669ff8fd.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-b3917114669ff8fd: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
