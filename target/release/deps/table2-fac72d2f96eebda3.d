/root/repo/target/release/deps/table2-fac72d2f96eebda3.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fac72d2f96eebda3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
