/root/repo/target/release/deps/profile_mult-ef24ee3b209e7280.d: crates/bench/src/bin/profile_mult.rs

/root/repo/target/release/deps/profile_mult-ef24ee3b209e7280: crates/bench/src/bin/profile_mult.rs

crates/bench/src/bin/profile_mult.rs:
