/root/repo/target/release/deps/xrta_chi-3f447b8b8e9d64cb.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/release/deps/xrta_chi-3f447b8b8e9d64cb: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
