/root/repo/target/release/deps/xrta_circuits-3e00319c6e7659b4.d: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

/root/repo/target/release/deps/libxrta_circuits-3e00319c6e7659b4.rlib: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

/root/repo/target/release/deps/libxrta_circuits-3e00319c6e7659b4.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adders.rs:
crates/circuits/src/chains.rs:
crates/circuits/src/examples.rs:
crates/circuits/src/mult.rs:
crates/circuits/src/random_dag.rs:
crates/circuits/src/suite.rs:
