/root/repo/target/release/deps/xrta_rng-ef45619c453be7d0.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libxrta_rng-ef45619c453be7d0.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libxrta_rng-ef45619c453be7d0.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
