/root/repo/target/release/deps/sat_solver-69efcbc6643bb5a7.d: crates/bench/benches/sat_solver.rs

/root/repo/target/release/deps/sat_solver-69efcbc6643bb5a7: crates/bench/benches/sat_solver.rs

crates/bench/benches/sat_solver.rs:
