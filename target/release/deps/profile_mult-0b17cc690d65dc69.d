/root/repo/target/release/deps/profile_mult-0b17cc690d65dc69.d: crates/bench/src/bin/profile_mult.rs

/root/repo/target/release/deps/profile_mult-0b17cc690d65dc69: crates/bench/src/bin/profile_mult.rs

crates/bench/src/bin/profile_mult.rs:
