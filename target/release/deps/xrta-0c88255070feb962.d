/root/repo/target/release/deps/xrta-0c88255070feb962.d: src/lib.rs

/root/repo/target/release/deps/libxrta-0c88255070feb962.rlib: src/lib.rs

/root/repo/target/release/deps/libxrta-0c88255070feb962.rmeta: src/lib.rs

src/lib.rs:
