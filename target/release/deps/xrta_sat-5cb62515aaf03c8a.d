/root/repo/target/release/deps/xrta_sat-5cb62515aaf03c8a.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/release/deps/xrta_sat-5cb62515aaf03c8a: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/lit.rs:
crates/sat/src/solver.rs:
