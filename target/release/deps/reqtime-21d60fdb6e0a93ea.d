/root/repo/target/release/deps/reqtime-21d60fdb6e0a93ea.d: crates/bench/benches/reqtime.rs

/root/repo/target/release/deps/reqtime-21d60fdb6e0a93ea: crates/bench/benches/reqtime.rs

crates/bench/benches/reqtime.rs:
