/root/repo/target/release/deps/xrta_bench-c461b9b70e1a979f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxrta_bench-c461b9b70e1a979f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxrta_bench-c461b9b70e1a979f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
