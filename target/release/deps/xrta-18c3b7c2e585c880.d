/root/repo/target/release/deps/xrta-18c3b7c2e585c880.d: src/bin/xrta.rs

/root/repo/target/release/deps/xrta-18c3b7c2e585c880: src/bin/xrta.rs

src/bin/xrta.rs:
