/root/repo/target/release/deps/xrta_timing-028edc42d7128f6e.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/release/deps/xrta_timing-028edc42d7128f6e: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
