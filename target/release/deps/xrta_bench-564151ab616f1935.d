/root/repo/target/release/deps/xrta_bench-564151ab616f1935.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/xrta_bench-564151ab616f1935: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
