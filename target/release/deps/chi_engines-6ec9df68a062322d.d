/root/repo/target/release/deps/chi_engines-6ec9df68a062322d.d: crates/bench/benches/chi_engines.rs

/root/repo/target/release/deps/chi_engines-6ec9df68a062322d: crates/bench/benches/chi_engines.rs

crates/bench/benches/chi_engines.rs:
