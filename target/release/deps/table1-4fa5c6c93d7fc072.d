/root/repo/target/release/deps/table1-4fa5c6c93d7fc072.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4fa5c6c93d7fc072: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
