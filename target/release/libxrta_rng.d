/root/repo/target/release/libxrta_rng.rlib: /root/repo/crates/rng/src/lib.rs
