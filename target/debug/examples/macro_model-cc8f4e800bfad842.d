/root/repo/target/debug/examples/macro_model-cc8f4e800bfad842.d: examples/macro_model.rs Cargo.toml

/root/repo/target/debug/examples/libmacro_model-cc8f4e800bfad842.rmeta: examples/macro_model.rs Cargo.toml

examples/macro_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
