/root/repo/target/debug/examples/false_path_slack-7fbb80b46de6cd5c.d: examples/false_path_slack.rs Cargo.toml

/root/repo/target/debug/examples/libfalse_path_slack-7fbb80b46de6cd5c.rmeta: examples/false_path_slack.rs Cargo.toml

examples/false_path_slack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
