/root/repo/target/debug/examples/false_path_slack-e60f0a5b65e5af9f.d: examples/false_path_slack.rs

/root/repo/target/debug/examples/libfalse_path_slack-e60f0a5b65e5af9f.rmeta: examples/false_path_slack.rs

examples/false_path_slack.rs:
