/root/repo/target/debug/examples/subcircuit_flex-2230a475617fcb96.d: examples/subcircuit_flex.rs

/root/repo/target/debug/examples/subcircuit_flex-2230a475617fcb96: examples/subcircuit_flex.rs

examples/subcircuit_flex.rs:
