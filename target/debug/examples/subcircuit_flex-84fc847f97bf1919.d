/root/repo/target/debug/examples/subcircuit_flex-84fc847f97bf1919.d: examples/subcircuit_flex.rs

/root/repo/target/debug/examples/libsubcircuit_flex-84fc847f97bf1919.rmeta: examples/subcircuit_flex.rs

examples/subcircuit_flex.rs:
