/root/repo/target/debug/examples/hierarchical-53e5a627edaf3d4d.d: examples/hierarchical.rs

/root/repo/target/debug/examples/hierarchical-53e5a627edaf3d4d: examples/hierarchical.rs

examples/hierarchical.rs:
