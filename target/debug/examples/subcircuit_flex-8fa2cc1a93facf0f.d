/root/repo/target/debug/examples/subcircuit_flex-8fa2cc1a93facf0f.d: examples/subcircuit_flex.rs Cargo.toml

/root/repo/target/debug/examples/libsubcircuit_flex-8fa2cc1a93facf0f.rmeta: examples/subcircuit_flex.rs Cargo.toml

examples/subcircuit_flex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
