/root/repo/target/debug/examples/macro_model-d95571fe9420e97e.d: examples/macro_model.rs

/root/repo/target/debug/examples/libmacro_model-d95571fe9420e97e.rmeta: examples/macro_model.rs

examples/macro_model.rs:
