/root/repo/target/debug/examples/quickstart-e26b82d18ec413f2.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-e26b82d18ec413f2.rmeta: examples/quickstart.rs

examples/quickstart.rs:
