/root/repo/target/debug/examples/quickstart-83ae0aa70c81be68.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-83ae0aa70c81be68: examples/quickstart.rs

examples/quickstart.rs:
