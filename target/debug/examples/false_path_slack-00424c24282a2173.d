/root/repo/target/debug/examples/false_path_slack-00424c24282a2173.d: examples/false_path_slack.rs

/root/repo/target/debug/examples/false_path_slack-00424c24282a2173: examples/false_path_slack.rs

examples/false_path_slack.rs:
