/root/repo/target/debug/examples/macro_model-e7dc2936f0981459.d: examples/macro_model.rs

/root/repo/target/debug/examples/macro_model-e7dc2936f0981459: examples/macro_model.rs

examples/macro_model.rs:
