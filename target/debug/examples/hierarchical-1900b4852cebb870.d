/root/repo/target/debug/examples/hierarchical-1900b4852cebb870.d: examples/hierarchical.rs

/root/repo/target/debug/examples/libhierarchical-1900b4852cebb870.rmeta: examples/hierarchical.rs

examples/hierarchical.rs:
