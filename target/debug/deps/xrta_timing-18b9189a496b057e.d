/root/repo/target/debug/deps/xrta_timing-18b9189a496b057e.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/debug/deps/libxrta_timing-18b9189a496b057e.rlib: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/debug/deps/libxrta_timing-18b9189a496b057e.rmeta: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
