/root/repo/target/debug/deps/end_to_end-7fb1e870a24bac84.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7fb1e870a24bac84: tests/end_to_end.rs

tests/end_to_end.rs:
