/root/repo/target/debug/deps/xrta-dcd37a9b44f23d98.d: src/bin/xrta.rs

/root/repo/target/debug/deps/libxrta-dcd37a9b44f23d98.rmeta: src/bin/xrta.rs

src/bin/xrta.rs:
