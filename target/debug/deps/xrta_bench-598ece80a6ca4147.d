/root/repo/target/debug/deps/xrta_bench-598ece80a6ca4147.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xrta_bench-598ece80a6ca4147: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
