/root/repo/target/debug/deps/profile_mult-75946948a922a6b7.d: crates/bench/src/bin/profile_mult.rs

/root/repo/target/debug/deps/libprofile_mult-75946948a922a6b7.rmeta: crates/bench/src/bin/profile_mult.rs

crates/bench/src/bin/profile_mult.rs:
