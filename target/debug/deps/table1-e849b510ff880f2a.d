/root/repo/target/debug/deps/table1-e849b510ff880f2a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-e849b510ff880f2a.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
