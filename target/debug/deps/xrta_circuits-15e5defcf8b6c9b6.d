/root/repo/target/debug/deps/xrta_circuits-15e5defcf8b6c9b6.d: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

/root/repo/target/debug/deps/libxrta_circuits-15e5defcf8b6c9b6.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adders.rs:
crates/circuits/src/chains.rs:
crates/circuits/src/examples.rs:
crates/circuits/src/mult.rs:
crates/circuits/src/random_dag.rs:
crates/circuits/src/suite.rs:
