/root/repo/target/debug/deps/chi_engines-ad3b66a856c43849.d: crates/bench/benches/chi_engines.rs

/root/repo/target/debug/deps/libchi_engines-ad3b66a856c43849.rmeta: crates/bench/benches/chi_engines.rs

crates/bench/benches/chi_engines.rs:
