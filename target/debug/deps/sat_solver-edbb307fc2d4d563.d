/root/repo/target/debug/deps/sat_solver-edbb307fc2d4d563.d: crates/bench/benches/sat_solver.rs

/root/repo/target/debug/deps/libsat_solver-edbb307fc2d4d563.rmeta: crates/bench/benches/sat_solver.rs

crates/bench/benches/sat_solver.rs:
