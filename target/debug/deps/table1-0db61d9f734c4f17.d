/root/repo/target/debug/deps/table1-0db61d9f734c4f17.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-0db61d9f734c4f17.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
