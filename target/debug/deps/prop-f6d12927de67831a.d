/root/repo/target/debug/deps/prop-f6d12927de67831a.d: crates/bdd/tests/prop.rs

/root/repo/target/debug/deps/prop-f6d12927de67831a: crates/bdd/tests/prop.rs

crates/bdd/tests/prop.rs:
