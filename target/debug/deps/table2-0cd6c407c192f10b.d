/root/repo/target/debug/deps/table2-0cd6c407c192f10b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-0cd6c407c192f10b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
