/root/repo/target/debug/deps/xrta_network-9e4a6f6da637d387.d: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_network-9e4a6f6da637d387.rmeta: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/bdd_bridge.rs:
crates/network/src/bench_fmt.rs:
crates/network/src/blif.rs:
crates/network/src/cnf_bridge.rs:
crates/network/src/decompose.rs:
crates/network/src/gate.rs:
crates/network/src/network.rs:
crates/network/src/transform.rs:
crates/network/src/truth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
