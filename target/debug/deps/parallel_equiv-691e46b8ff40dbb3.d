/root/repo/target/debug/deps/parallel_equiv-691e46b8ff40dbb3.d: tests/parallel_equiv.rs

/root/repo/target/debug/deps/libparallel_equiv-691e46b8ff40dbb3.rmeta: tests/parallel_equiv.rs

tests/parallel_equiv.rs:
