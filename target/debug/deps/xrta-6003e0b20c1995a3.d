/root/repo/target/debug/deps/xrta-6003e0b20c1995a3.d: src/lib.rs

/root/repo/target/debug/deps/libxrta-6003e0b20c1995a3.rmeta: src/lib.rs

src/lib.rs:
