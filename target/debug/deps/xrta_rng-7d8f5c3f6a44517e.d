/root/repo/target/debug/deps/xrta_rng-7d8f5c3f6a44517e.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/xrta_rng-7d8f5c3f6a44517e: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
