/root/repo/target/debug/deps/xrta_core-8c28ac3d4a63f5ed.d: crates/core/src/lib.rs crates/core/src/approx1.rs crates/core/src/approx2.rs crates/core/src/dominance.rs crates/core/src/exact.rs crates/core/src/flex.rs crates/core/src/leaves.rs crates/core/src/macro_model.rs crates/core/src/plan.rs crates/core/src/report.rs crates/core/src/slack.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libxrta_core-8c28ac3d4a63f5ed.rmeta: crates/core/src/lib.rs crates/core/src/approx1.rs crates/core/src/approx2.rs crates/core/src/dominance.rs crates/core/src/exact.rs crates/core/src/flex.rs crates/core/src/leaves.rs crates/core/src/macro_model.rs crates/core/src/plan.rs crates/core/src/report.rs crates/core/src/slack.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/approx1.rs:
crates/core/src/approx2.rs:
crates/core/src/dominance.rs:
crates/core/src/exact.rs:
crates/core/src/flex.rs:
crates/core/src/leaves.rs:
crates/core/src/macro_model.rs:
crates/core/src/plan.rs:
crates/core/src/report.rs:
crates/core/src/slack.rs:
crates/core/src/types.rs:
