/root/repo/target/debug/deps/prop-1eb2de5ee884590d.d: crates/bdd/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-1eb2de5ee884590d.rmeta: crates/bdd/tests/prop.rs Cargo.toml

crates/bdd/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
