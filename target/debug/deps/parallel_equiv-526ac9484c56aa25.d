/root/repo/target/debug/deps/parallel_equiv-526ac9484c56aa25.d: tests/parallel_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_equiv-526ac9484c56aa25.rmeta: tests/parallel_equiv.rs Cargo.toml

tests/parallel_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
