/root/repo/target/debug/deps/parallel_equiv-08d1dcdaa475c3f6.d: tests/parallel_equiv.rs

/root/repo/target/debug/deps/parallel_equiv-08d1dcdaa475c3f6: tests/parallel_equiv.rs

tests/parallel_equiv.rs:
