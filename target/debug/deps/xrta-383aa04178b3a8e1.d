/root/repo/target/debug/deps/xrta-383aa04178b3a8e1.d: src/bin/xrta.rs

/root/repo/target/debug/deps/xrta-383aa04178b3a8e1: src/bin/xrta.rs

src/bin/xrta.rs:
