/root/repo/target/debug/deps/xrta_rng-8e804852e6949913.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_rng-8e804852e6949913.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
