/root/repo/target/debug/deps/prop-fe40b0b8d0489a3c.d: crates/network/tests/prop.rs

/root/repo/target/debug/deps/prop-fe40b0b8d0489a3c: crates/network/tests/prop.rs

crates/network/tests/prop.rs:
