/root/repo/target/debug/deps/reqtime-677392eab12e6639.d: crates/bench/benches/reqtime.rs Cargo.toml

/root/repo/target/debug/deps/libreqtime-677392eab12e6639.rmeta: crates/bench/benches/reqtime.rs Cargo.toml

crates/bench/benches/reqtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
