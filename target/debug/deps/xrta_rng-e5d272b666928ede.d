/root/repo/target/debug/deps/xrta_rng-e5d272b666928ede.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libxrta_rng-e5d272b666928ede.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libxrta_rng-e5d272b666928ede.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
