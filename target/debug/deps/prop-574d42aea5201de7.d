/root/repo/target/debug/deps/prop-574d42aea5201de7.d: crates/timing/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-574d42aea5201de7.rmeta: crates/timing/tests/prop.rs Cargo.toml

crates/timing/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
