/root/repo/target/debug/deps/soundness_prop-805f31343dee764f.d: tests/soundness_prop.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness_prop-805f31343dee764f.rmeta: tests/soundness_prop.rs Cargo.toml

tests/soundness_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
