/root/repo/target/debug/deps/table1-e25defb8199e2b9a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e25defb8199e2b9a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
