/root/repo/target/debug/deps/profile_mult-c6ce8111cc0fd077.d: crates/bench/src/bin/profile_mult.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_mult-c6ce8111cc0fd077.rmeta: crates/bench/src/bin/profile_mult.rs Cargo.toml

crates/bench/src/bin/profile_mult.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
