/root/repo/target/debug/deps/xrta_chi-830035c8514f94af.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/debug/deps/libxrta_chi-830035c8514f94af.rmeta: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
