/root/repo/target/debug/deps/xrta-c62be92bd94a0cfd.d: src/bin/xrta.rs Cargo.toml

/root/repo/target/debug/deps/libxrta-c62be92bd94a0cfd.rmeta: src/bin/xrta.rs Cargo.toml

src/bin/xrta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
