/root/repo/target/debug/deps/xrta_bdd-141377bf22123659.d: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libxrta_bdd-141377bf22123659.rmeta: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/compose.rs:
crates/bdd/src/count.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/hash.rs:
crates/bdd/src/isop.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/minimal.rs:
crates/bdd/src/node.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/reorder.rs:
