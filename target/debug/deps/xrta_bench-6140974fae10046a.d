/root/repo/target/debug/deps/xrta_bench-6140974fae10046a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_bench-6140974fae10046a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
