/root/repo/target/debug/deps/bdd_ops-b8426acc66050015.d: crates/bench/benches/bdd_ops.rs Cargo.toml

/root/repo/target/debug/deps/libbdd_ops-b8426acc66050015.rmeta: crates/bench/benches/bdd_ops.rs Cargo.toml

crates/bench/benches/bdd_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
