/root/repo/target/debug/deps/reqtime-2ec9da523a3cc4f7.d: crates/bench/benches/reqtime.rs

/root/repo/target/debug/deps/libreqtime-2ec9da523a3cc4f7.rmeta: crates/bench/benches/reqtime.rs

crates/bench/benches/reqtime.rs:
