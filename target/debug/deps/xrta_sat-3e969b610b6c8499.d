/root/repo/target/debug/deps/xrta_sat-3e969b610b6c8499.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libxrta_sat-3e969b610b6c8499.rlib: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libxrta_sat-3e969b610b6c8499.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/lit.rs:
crates/sat/src/solver.rs:
