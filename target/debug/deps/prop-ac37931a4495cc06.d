/root/repo/target/debug/deps/prop-ac37931a4495cc06.d: crates/sat/tests/prop.rs

/root/repo/target/debug/deps/libprop-ac37931a4495cc06.rmeta: crates/sat/tests/prop.rs

crates/sat/tests/prop.rs:
