/root/repo/target/debug/deps/end_to_end-8aab0ef3da2577b6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-8aab0ef3da2577b6.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
