/root/repo/target/debug/deps/xrta_sat-7324a1a0a7174bb1.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/libxrta_sat-7324a1a0a7174bb1.rmeta: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/lit.rs:
crates/sat/src/solver.rs:
