/root/repo/target/debug/deps/prop-9da4de3da0fd9bb9.d: crates/timing/tests/prop.rs

/root/repo/target/debug/deps/prop-9da4de3da0fd9bb9: crates/timing/tests/prop.rs

crates/timing/tests/prop.rs:
