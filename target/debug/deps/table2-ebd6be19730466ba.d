/root/repo/target/debug/deps/table2-ebd6be19730466ba.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-ebd6be19730466ba.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
