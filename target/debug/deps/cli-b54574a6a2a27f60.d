/root/repo/target/debug/deps/cli-b54574a6a2a27f60.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-b54574a6a2a27f60.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_xrta=placeholder:xrta
# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
