/root/repo/target/debug/deps/prop-c2cf68c4437bf448.d: crates/bdd/tests/prop.rs

/root/repo/target/debug/deps/libprop-c2cf68c4437bf448.rmeta: crates/bdd/tests/prop.rs

crates/bdd/tests/prop.rs:
