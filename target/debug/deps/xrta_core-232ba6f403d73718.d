/root/repo/target/debug/deps/xrta_core-232ba6f403d73718.d: crates/core/src/lib.rs crates/core/src/approx1.rs crates/core/src/approx2.rs crates/core/src/dominance.rs crates/core/src/exact.rs crates/core/src/flex.rs crates/core/src/leaves.rs crates/core/src/macro_model.rs crates/core/src/plan.rs crates/core/src/report.rs crates/core/src/slack.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_core-232ba6f403d73718.rmeta: crates/core/src/lib.rs crates/core/src/approx1.rs crates/core/src/approx2.rs crates/core/src/dominance.rs crates/core/src/exact.rs crates/core/src/flex.rs crates/core/src/leaves.rs crates/core/src/macro_model.rs crates/core/src/plan.rs crates/core/src/report.rs crates/core/src/slack.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/approx1.rs:
crates/core/src/approx2.rs:
crates/core/src/dominance.rs:
crates/core/src/exact.rs:
crates/core/src/flex.rs:
crates/core/src/leaves.rs:
crates/core/src/macro_model.rs:
crates/core/src/plan.rs:
crates/core/src/report.rs:
crates/core/src/slack.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
