/root/repo/target/debug/deps/xrta_bdd-9eaad3a657c9d96d.d: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libxrta_bdd-9eaad3a657c9d96d.rlib: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs

/root/repo/target/debug/deps/libxrta_bdd-9eaad3a657c9d96d.rmeta: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs

crates/bdd/src/lib.rs:
crates/bdd/src/compose.rs:
crates/bdd/src/count.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/hash.rs:
crates/bdd/src/isop.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/minimal.rs:
crates/bdd/src/node.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/reorder.rs:
