/root/repo/target/debug/deps/xrta_rng-70fe4861f0a0f312.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libxrta_rng-70fe4861f0a0f312.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
