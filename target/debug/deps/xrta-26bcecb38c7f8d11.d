/root/repo/target/debug/deps/xrta-26bcecb38c7f8d11.d: src/bin/xrta.rs

/root/repo/target/debug/deps/libxrta-26bcecb38c7f8d11.rmeta: src/bin/xrta.rs

src/bin/xrta.rs:
