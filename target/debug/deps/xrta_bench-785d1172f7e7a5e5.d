/root/repo/target/debug/deps/xrta_bench-785d1172f7e7a5e5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxrta_bench-785d1172f7e7a5e5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
