/root/repo/target/debug/deps/prop-ace2eff8570f7407.d: crates/network/tests/prop.rs

/root/repo/target/debug/deps/libprop-ace2eff8570f7407.rmeta: crates/network/tests/prop.rs

crates/network/tests/prop.rs:
