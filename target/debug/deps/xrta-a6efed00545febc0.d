/root/repo/target/debug/deps/xrta-a6efed00545febc0.d: src/lib.rs

/root/repo/target/debug/deps/libxrta-a6efed00545febc0.rmeta: src/lib.rs

src/lib.rs:
