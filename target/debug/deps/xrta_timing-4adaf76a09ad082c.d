/root/repo/target/debug/deps/xrta_timing-4adaf76a09ad082c.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/debug/deps/libxrta_timing-4adaf76a09ad082c.rmeta: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
