/root/repo/target/debug/deps/xrta-17300e2bbe149104.d: src/lib.rs

/root/repo/target/debug/deps/libxrta-17300e2bbe149104.rlib: src/lib.rs

/root/repo/target/debug/deps/libxrta-17300e2bbe149104.rmeta: src/lib.rs

src/lib.rs:
