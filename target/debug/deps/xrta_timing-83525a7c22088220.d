/root/repo/target/debug/deps/xrta_timing-83525a7c22088220.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_timing-83525a7c22088220.rmeta: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
