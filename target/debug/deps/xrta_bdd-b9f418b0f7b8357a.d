/root/repo/target/debug/deps/xrta_bdd-b9f418b0f7b8357a.d: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_bdd-b9f418b0f7b8357a.rmeta: crates/bdd/src/lib.rs crates/bdd/src/compose.rs crates/bdd/src/count.rs crates/bdd/src/dot.rs crates/bdd/src/hash.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/minimal.rs crates/bdd/src/node.rs crates/bdd/src/quant.rs crates/bdd/src/reorder.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/compose.rs:
crates/bdd/src/count.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/hash.rs:
crates/bdd/src/isop.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/minimal.rs:
crates/bdd/src/node.rs:
crates/bdd/src/quant.rs:
crates/bdd/src/reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
