/root/repo/target/debug/deps/xrta-51855c29f7154ae1.d: src/lib.rs

/root/repo/target/debug/deps/xrta-51855c29f7154ae1: src/lib.rs

src/lib.rs:
