/root/repo/target/debug/deps/xrta_chi-c2c8e83ad694e0f0.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/debug/deps/xrta_chi-c2c8e83ad694e0f0: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
