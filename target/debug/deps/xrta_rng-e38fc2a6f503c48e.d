/root/repo/target/debug/deps/xrta_rng-e38fc2a6f503c48e.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libxrta_rng-e38fc2a6f503c48e.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
