/root/repo/target/debug/deps/profile_mult-a6079b9aefb74fe2.d: crates/bench/src/bin/profile_mult.rs

/root/repo/target/debug/deps/libprofile_mult-a6079b9aefb74fe2.rmeta: crates/bench/src/bin/profile_mult.rs

crates/bench/src/bin/profile_mult.rs:
