/root/repo/target/debug/deps/xrta_timing-b886e6daca0eae69.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/debug/deps/xrta_timing-b886e6daca0eae69: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
