/root/repo/target/debug/deps/xrta_network-b246fd8b91f76c6d.d: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs

/root/repo/target/debug/deps/libxrta_network-b246fd8b91f76c6d.rmeta: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs

crates/network/src/lib.rs:
crates/network/src/bdd_bridge.rs:
crates/network/src/bench_fmt.rs:
crates/network/src/blif.rs:
crates/network/src/cnf_bridge.rs:
crates/network/src/decompose.rs:
crates/network/src/gate.rs:
crates/network/src/network.rs:
crates/network/src/transform.rs:
crates/network/src/truth.rs:
