/root/repo/target/debug/deps/table2-2bf3a14c018d6947.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-2bf3a14c018d6947.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
