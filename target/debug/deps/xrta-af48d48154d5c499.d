/root/repo/target/debug/deps/xrta-af48d48154d5c499.d: src/bin/xrta.rs Cargo.toml

/root/repo/target/debug/deps/libxrta-af48d48154d5c499.rmeta: src/bin/xrta.rs Cargo.toml

src/bin/xrta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
