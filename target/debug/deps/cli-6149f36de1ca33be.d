/root/repo/target/debug/deps/cli-6149f36de1ca33be.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-6149f36de1ca33be.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_xrta=placeholder:xrta
# env-dep:CARGO_MANIFEST_DIR=/root/repo
