/root/repo/target/debug/deps/xrta_chi-681429cc365bcadd.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/debug/deps/libxrta_chi-681429cc365bcadd.rlib: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/debug/deps/libxrta_chi-681429cc365bcadd.rmeta: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
