/root/repo/target/debug/deps/prop-20e34289db6a95f1.d: crates/sat/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-20e34289db6a95f1.rmeta: crates/sat/tests/prop.rs Cargo.toml

crates/sat/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
