/root/repo/target/debug/deps/xrta_sat-fd5704be707c7ad4.d: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

/root/repo/target/debug/deps/xrta_sat-fd5704be707c7ad4: crates/sat/src/lib.rs crates/sat/src/cnf.rs crates/sat/src/dimacs.rs crates/sat/src/lit.rs crates/sat/src/solver.rs

crates/sat/src/lib.rs:
crates/sat/src/cnf.rs:
crates/sat/src/dimacs.rs:
crates/sat/src/lit.rs:
crates/sat/src/solver.rs:
