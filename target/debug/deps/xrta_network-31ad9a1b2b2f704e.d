/root/repo/target/debug/deps/xrta_network-31ad9a1b2b2f704e.d: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs

/root/repo/target/debug/deps/libxrta_network-31ad9a1b2b2f704e.rmeta: crates/network/src/lib.rs crates/network/src/bdd_bridge.rs crates/network/src/bench_fmt.rs crates/network/src/blif.rs crates/network/src/cnf_bridge.rs crates/network/src/decompose.rs crates/network/src/gate.rs crates/network/src/network.rs crates/network/src/transform.rs crates/network/src/truth.rs

crates/network/src/lib.rs:
crates/network/src/bdd_bridge.rs:
crates/network/src/bench_fmt.rs:
crates/network/src/blif.rs:
crates/network/src/cnf_bridge.rs:
crates/network/src/decompose.rs:
crates/network/src/gate.rs:
crates/network/src/network.rs:
crates/network/src/transform.rs:
crates/network/src/truth.rs:
