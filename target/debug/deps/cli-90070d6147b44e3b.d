/root/repo/target/debug/deps/cli-90070d6147b44e3b.d: tests/cli.rs

/root/repo/target/debug/deps/cli-90070d6147b44e3b: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_xrta=/root/repo/target/debug/xrta
# env-dep:CARGO_MANIFEST_DIR=/root/repo
