/root/repo/target/debug/deps/chi_engines-72bb0b9bcaeb8c1b.d: crates/bench/benches/chi_engines.rs Cargo.toml

/root/repo/target/debug/deps/libchi_engines-72bb0b9bcaeb8c1b.rmeta: crates/bench/benches/chi_engines.rs Cargo.toml

crates/bench/benches/chi_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
