/root/repo/target/debug/deps/bdd_ops-eac1359d8d40a446.d: crates/bench/benches/bdd_ops.rs

/root/repo/target/debug/deps/libbdd_ops-eac1359d8d40a446.rmeta: crates/bench/benches/bdd_ops.rs

crates/bench/benches/bdd_ops.rs:
