/root/repo/target/debug/deps/profile_mult-584483c6d60ae6e3.d: crates/bench/src/bin/profile_mult.rs

/root/repo/target/debug/deps/profile_mult-584483c6d60ae6e3: crates/bench/src/bin/profile_mult.rs

crates/bench/src/bin/profile_mult.rs:
