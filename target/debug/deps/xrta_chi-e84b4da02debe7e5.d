/root/repo/target/debug/deps/xrta_chi-e84b4da02debe7e5.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_chi-e84b4da02debe7e5.rmeta: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs Cargo.toml

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
