/root/repo/target/debug/deps/xrta-d7785eb4f829b9ff.d: src/bin/xrta.rs

/root/repo/target/debug/deps/xrta-d7785eb4f829b9ff: src/bin/xrta.rs

src/bin/xrta.rs:
