/root/repo/target/debug/deps/xrta_bench-50efb0ad10756cfd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxrta_bench-50efb0ad10756cfd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
