/root/repo/target/debug/deps/prop-92547c904d4343f8.d: crates/timing/tests/prop.rs

/root/repo/target/debug/deps/libprop-92547c904d4343f8.rmeta: crates/timing/tests/prop.rs

crates/timing/tests/prop.rs:
