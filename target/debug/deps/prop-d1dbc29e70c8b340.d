/root/repo/target/debug/deps/prop-d1dbc29e70c8b340.d: crates/sat/tests/prop.rs

/root/repo/target/debug/deps/prop-d1dbc29e70c8b340: crates/sat/tests/prop.rs

crates/sat/tests/prop.rs:
