/root/repo/target/debug/deps/xrta-48e76884fcef74d9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxrta-48e76884fcef74d9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
