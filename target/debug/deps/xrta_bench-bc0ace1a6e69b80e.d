/root/repo/target/debug/deps/xrta_bench-bc0ace1a6e69b80e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxrta_bench-bc0ace1a6e69b80e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxrta_bench-bc0ace1a6e69b80e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
