/root/repo/target/debug/deps/xrta_bench-5d728d59d56155fd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_bench-5d728d59d56155fd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
