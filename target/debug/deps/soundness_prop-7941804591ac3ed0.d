/root/repo/target/debug/deps/soundness_prop-7941804591ac3ed0.d: tests/soundness_prop.rs

/root/repo/target/debug/deps/soundness_prop-7941804591ac3ed0: tests/soundness_prop.rs

tests/soundness_prop.rs:
