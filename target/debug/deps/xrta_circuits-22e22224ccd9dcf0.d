/root/repo/target/debug/deps/xrta_circuits-22e22224ccd9dcf0.d: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libxrta_circuits-22e22224ccd9dcf0.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adders.rs crates/circuits/src/chains.rs crates/circuits/src/examples.rs crates/circuits/src/mult.rs crates/circuits/src/random_dag.rs crates/circuits/src/suite.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/adders.rs:
crates/circuits/src/chains.rs:
crates/circuits/src/examples.rs:
crates/circuits/src/mult.rs:
crates/circuits/src/random_dag.rs:
crates/circuits/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
