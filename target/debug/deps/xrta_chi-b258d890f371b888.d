/root/repo/target/debug/deps/xrta_chi-b258d890f371b888.d: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

/root/repo/target/debug/deps/libxrta_chi-b258d890f371b888.rmeta: crates/chi/src/lib.rs crates/chi/src/engine.rs crates/chi/src/sat_engine.rs crates/chi/src/true_delay.rs

crates/chi/src/lib.rs:
crates/chi/src/engine.rs:
crates/chi/src/sat_engine.rs:
crates/chi/src/true_delay.rs:
