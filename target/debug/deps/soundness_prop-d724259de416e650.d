/root/repo/target/debug/deps/soundness_prop-d724259de416e650.d: tests/soundness_prop.rs

/root/repo/target/debug/deps/libsoundness_prop-d724259de416e650.rmeta: tests/soundness_prop.rs

tests/soundness_prop.rs:
