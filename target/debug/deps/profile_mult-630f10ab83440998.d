/root/repo/target/debug/deps/profile_mult-630f10ab83440998.d: crates/bench/src/bin/profile_mult.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_mult-630f10ab83440998.rmeta: crates/bench/src/bin/profile_mult.rs Cargo.toml

crates/bench/src/bin/profile_mult.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
