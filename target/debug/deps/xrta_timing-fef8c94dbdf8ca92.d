/root/repo/target/debug/deps/xrta_timing-fef8c94dbdf8ca92.d: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

/root/repo/target/debug/deps/libxrta_timing-fef8c94dbdf8ca92.rmeta: crates/timing/src/lib.rs crates/timing/src/delay.rs crates/timing/src/time.rs crates/timing/src/topo.rs

crates/timing/src/lib.rs:
crates/timing/src/delay.rs:
crates/timing/src/time.rs:
crates/timing/src/topo.rs:
