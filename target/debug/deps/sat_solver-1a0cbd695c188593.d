/root/repo/target/debug/deps/sat_solver-1a0cbd695c188593.d: crates/bench/benches/sat_solver.rs Cargo.toml

/root/repo/target/debug/deps/libsat_solver-1a0cbd695c188593.rmeta: crates/bench/benches/sat_solver.rs Cargo.toml

crates/bench/benches/sat_solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
