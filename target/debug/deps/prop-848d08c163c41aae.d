/root/repo/target/debug/deps/prop-848d08c163c41aae.d: crates/network/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-848d08c163c41aae.rmeta: crates/network/tests/prop.rs Cargo.toml

crates/network/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
