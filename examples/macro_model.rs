//! Black-box timing macro-models (the paper's follow-up work, its
//! reference [7]): abstract a block as false-path-aware pin-to-pin
//! delays, so hierarchical timing can be accurate "without giving the
//! internal details of the box".
//!
//! Run with `cargo run --release --example macro_model`.

use xrta::circuits::{carry_skip_adder, two_mux_bypass};
use xrta::core::{macro_model, report};
use xrta::prelude::*;

fn print_model(m: &xrta::core::MacroModel) {
    print!("{:>8}", "");
    for o in &m.output_names {
        print!("{o:>8}");
    }
    println!();
    for (i, iname) in m.input_names.iter().enumerate() {
        print!("{iname:>8}");
        for o in 0..m.output_names.len() {
            match (m.delay[i][o], m.topological[i][o]) {
                (Some(d), Some(t)) if d < t => print!("{:>8}", format!("{d}<{t}")),
                (Some(d), _) => print!("{d:>8}"),
                (None, _) => print!("{:>8}", "·"),
            }
        }
        println!();
    }
}

fn main() {
    println!("=== pin-to-pin true delays: the two-MUX bypass ===");
    println!("(entries d<t mean the true delay d beats the topological t)\n");
    let net = two_mux_bypass();
    let m = macro_model(&net, &UnitDelay, EngineKind::Bdd);
    print_model(&m);
    println!(
        "\n{} pin pair(s) tightened by false-path analysis",
        m.tightened_pairs()
    );

    println!("\n=== 6-bit carry-skip adder ===\n");
    let adder = carry_skip_adder(6, 3).expect("valid adder");
    let m = macro_model(&adder, &UnitDelay, EngineKind::Sat);
    // Print only the carry-out column (the interesting one).
    let cout_col = m.output_names.len() - 1;
    println!("input -> cout delays (true vs topological):");
    for (i, iname) in m.input_names.iter().enumerate() {
        if let (Some(d), Some(t)) = (m.delay[i][cout_col], m.topological[i][cout_col]) {
            println!(
                "  {iname:>4} -> cout : {d:>3}  (topological {t}{})",
                if d < t { ", tightened" } else { "" }
            );
        }
    }
    println!(
        "\n{} of {} dependent pin pairs tightened",
        m.tightened_pairs(),
        m.delay.iter().flatten().filter(|d| d.is_some()).count()
    );

    // Composition demo: the abstraction stays safe for shifted arrivals.
    println!("\n=== composing the abstraction ===");
    let arr: Vec<Time> = (0..adder.inputs().len())
        .map(|i| Time::new((i % 3) as i64))
        .collect();
    let abstracted = m.output_arrivals(&arr);
    let exact = FunctionalTiming::new(&adder, &UnitDelay, arr, EngineKind::Sat).true_arrivals();
    let mut safe = true;
    for (a, e) in abstracted.iter().zip(&exact) {
        if a < e {
            safe = false;
        }
    }
    println!(
        "macro-model output arrivals upper-bound the monolithic analysis: {}",
        if safe {
            "yes (safe abstraction)"
        } else {
            "VIOLATION"
        }
    );

    // Show the report module on the bypass circuit, for good measure.
    println!("\n=== §4.3 report on the bypass circuit ===\n");
    let req = vec![Time::new(4); net.outputs().len()];
    let r = approx2_required_times(&net, &UnitDelay, &req, Approx2Options::default());
    print!("{}", report::render_approx2(&net, &r));
}
