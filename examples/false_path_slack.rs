//! Performance-oriented resynthesis (§3's first application): compute
//! false-path-aware *true slack* on a carry-skip adder and compare with
//! topological slack — nodes on the (false) ripple-through-skip paths
//! gain real slack that a resynthesis tool may exploit.
//!
//! Run with `cargo run --release --example false_path_slack`.

use xrta::circuits::carry_skip_adder;
use xrta::prelude::*;

fn main() {
    let width = 8;
    let block = 4;
    let net = carry_skip_adder(width, block).expect("valid adder");
    println!("=== {}-bit carry-skip adder (blocks of {block}) ===", width);

    let zeros = vec![Time::ZERO; net.inputs().len()];
    let topo = topological_delays(&net, &UnitDelay);
    let worst = topo.iter().copied().max().expect("has outputs");
    println!("topological delay: {worst}");

    // True delay of the carry-out: the ripple-through-all-blocks path is
    // false (it would need every block-propagate to be both 1 and 0).
    let cout = *net.outputs().last().expect("has outputs");
    let ft = FunctionalTiming::new(&net, &UnitDelay, zeros.clone(), EngineKind::Sat);
    let true_cout = ft.true_arrival(cout);
    let topo_cout = topo.last().copied().expect("has outputs");
    println!(
        "carry-out: topological arrival {topo_cout}, true arrival {true_cout} ({})",
        if true_cout < topo_cout {
            "false paths detected"
        } else {
            "no false paths"
        }
    );

    // Per-gate slack comparison: use the topological delay as the
    // required time at every output, then measure slack at the carry
    // gates along the ripple chain.
    let req = vec![worst; net.outputs().len()];
    println!("\nslack at the block-carry gates (required time = {worst} at all outputs):");
    println!("  node        arrival  required  true-slack  topo-slack");
    for i in 1..=width {
        let name = format!("c{i}");
        let Some(node) = net.find(&name) else {
            continue;
        };
        let s = true_slack(&net, &UnitDelay, &zeros, &req, node, EngineKind::Sat);
        println!(
            "  {:<10}  {:>7}  {:>8}  {:>10}  {:>10}{}",
            name,
            s.arrival,
            s.required,
            s.slack,
            s.topo_slack,
            if s.slack > s.topo_slack {
                "   <-- gained"
            } else {
                ""
            }
        );
    }

    // Input deadlines: the §4.3 search on the whole adder.
    println!("\nlatest safe input arrival times (approx 2, value-independent):");
    let r = approx2_required_times(
        &net,
        &UnitDelay,
        &req,
        Approx2Options {
            max_solutions: 1,
            ..Approx2Options::default()
        },
    );
    let best = &r.maximal[0];
    let mut gained = 0;
    for (pos, &pi) in net.inputs().iter().enumerate() {
        if best[pos] > r.r_bottom[pos] {
            gained += 1;
            println!(
                "  {:<5} topological {} -> validated {}",
                net.node(pi).name,
                r.r_bottom[pos],
                best[pos]
            );
        }
    }
    println!(
        "{gained}/{} inputs gained slack over topological analysis ({} oracle calls)",
        net.inputs().len(),
        r.oracle_calls
    );
}
