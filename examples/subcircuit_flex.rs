//! Subcircuit timing flexibility (§5): value-dependent arrival times at
//! subcircuit inputs, folded onto the subcircuit's input space as in the
//! paper's Figure 6 table — including the satisfiability-don't-care row
//! — plus required times at a subcircuit output via the cut network.
//!
//! Run with `cargo run --example subcircuit_flex`.

use xrta::prelude::*;

fn main() {
    // The Figure-6-like fanin network: u1/u2 arrive at 1 or 2 depending
    // on the value of x1.
    let (net, u) = xrta::circuits::fig6();
    println!("=== §5.1: arrival times at subcircuit inputs (Figure 6) ===\n");
    let res = subcircuit_arrival_times(
        &net,
        &UnitDelay,
        &[Time::ZERO; 3],
        &u,
        ArrivalFlexOptions::default(),
    )
    .expect("small example");

    println!("refined partition of the primary-input space:");
    for class in &res.classes {
        let times: Vec<String> = class.arrival.iter().map(|t| t.to_string()).collect();
        println!(
            "  some X class -> (arr(u1), arr(u2)) = ({})",
            times.join(", ")
        );
    }

    println!("\nfolded onto the subcircuit inputs (the paper's table):");
    println!("  u1u2 | arrival tuples");
    for (u_vec, tuples) in &res.folded {
        let label: String = u_vec.iter().map(|&b| if b { '1' } else { '0' }).collect();
        if tuples.is_empty() {
            println!("  {label}   | {{(∞,∞)}}   (vector never occurs: SDC)");
        } else {
            let ts: Vec<String> = tuples
                .iter()
                .map(|t| {
                    let inner: Vec<String> = t.iter().map(|x| x.to_string()).collect();
                    format!("({})", inner.join(","))
                })
                .collect();
            println!("  {label}   | {{{}}}", ts.join(", "));
        }
    }

    // §5.2: required times at an internal cut.
    println!("\n=== §5.2: required times at a subcircuit output ===\n");
    let mut net2 = Network::new("resynth");
    let x1 = net2.add_input("x1").expect("fresh");
    let a = net2.add_input("a").expect("fresh");
    let y1 = net2.add_gate("y1", GateKind::Buf, &[x1]).expect("fresh");
    let v = net2.add_gate("v", GateKind::Buf, &[a]).expect("fresh");
    let y2 = net2.add_gate("y2", GateKind::Buf, &[v]).expect("fresh");
    let z = net2
        .add_gate("z", GateKind::And, &[y1, v, y2])
        .expect("fresh");
    net2.mark_output(z);
    println!("network: z = AND(buf(x1), v, buf(v)) with v the subcircuit output, req(z)=2");
    let req = subcircuit_required_times(
        &net2,
        &UnitDelay,
        &[Time::ZERO; 2],
        &[Time::new(2)],
        &[v],
        1 << 22,
    )
    .expect("small example");
    println!("topological required time at v: {}", req.topo_required[0]);
    for cond in &req.conditions {
        println!(
            "false-path-aware condition at v: settle-to-1 by {}, settle-to-0 by {}",
            cond.per_input[0].value1, cond.per_input[0].value0
        );
    }
    println!("(the settle-to-0 deadline relaxes: one early 0 on any AND fanin suffices)");
}
