//! Hierarchical synthesis (§3, Figure 2): two cascaded sequential
//! components; the right one holds a latch whose input must settle
//! before the cycle time. The constraint is mapped backwards through the
//! right component's combinational logic to the component boundary, with
//! false paths taken into account — so the left component gets a looser
//! (but still safe) deadline than topological analysis would give.
//!
//! The right component is given in BLIF with a `.latch`; parsing cuts
//! the latch (§3's edge-triggered handling: latch input becomes a
//! primary output with required time = cycle − setup).
//!
//! Run with `cargo run --example hierarchical`.

use xrta::network::parse_blif;
use xrta::prelude::*;

// The right component: boundary signals b0, b1, bs feed a bypassable
// datapath (shared-select false path) whose result is latched.
const RIGHT_BLIF: &str = r"
.model right_component
.inputs bs b0 b1
.outputs q_out
.latch d q 0
# slow branch: two buffers on b0
.names b0 s1
1 1
.names s1 s2
1 1
# m1 = bs ? s2 : b0    (select the slow copy when bs = 1)
.names bs b0 s2 m1
01- 1
1-1 1
# d = bs ? b1 : m1     (… but then bs = 1 reads b1 instead: false path)
.names bs m1 b1 d
01- 1
1-1 1
.names q q_out
1 1
.end
";

fn main() {
    let right = parse_blif(RIGHT_BLIF).expect("embedded netlist is valid");
    println!("=== Figure 2: mapping a cycle-time constraint to a component boundary ===\n");
    println!(
        "right component after latch cutting: inputs {:?}, outputs {:?}",
        right
            .inputs()
            .iter()
            .map(|&i| right.node(i).name.as_str())
            .collect::<Vec<_>>(),
        right
            .outputs()
            .iter()
            .map(|&o| right.node(o).name.as_str())
            .collect::<Vec<_>>()
    );

    // Cycle time 6, setup 1: the latch input d must settle by 5; the
    // latch output q is available at the clock edge (time 0). q_out is
    // registered downstream too, so it also gets the cycle deadline.
    let cycle = Time::new(6);
    let setup = 1;
    let req: Vec<Time> = right
        .outputs()
        .iter()
        .map(|&o| {
            if right.node(o).name == "d" {
                cycle - setup
            } else {
                cycle
            }
        })
        .collect();
    // Boundary signals arrive from the left component; the latch output
    // q arrives at the clock edge (0). For the backward mapping we ask:
    // by when must each boundary signal arrive? (§4 on the cut network.)
    println!(
        "\ncycle time {cycle}, setup {setup} → req(d) = {}",
        cycle - setup
    );

    // Topological mapping (what a naive flow would hand the left
    // component):
    let topo = required_times(&right, &UnitDelay, &req);
    println!("\ntopological boundary deadlines:");
    for &i in right.inputs() {
        println!("  req({}) = {}", right.node(i).name, topo[i.index()]);
    }

    // False-path-aware mapping (approx 2, value-independent — directly
    // usable as plain deadlines by any synthesis tool):
    let r = approx2_required_times(&right, &UnitDelay, &req, Approx2Options::default());
    println!("\nfalse-path-aware boundary deadlines (maximal safe points):");
    for m in &r.maximal {
        let parts: Vec<String> = right
            .inputs()
            .iter()
            .enumerate()
            .map(|(pos, &i)| format!("req({}) = {}", right.node(i).name, m[pos]))
            .collect();
        println!("  {}", parts.join(", "));
    }
    println!(
        "\nnon-trivial improvement over topological: {}",
        r.has_nontrivial_requirement()
    );
    println!(
        "(b0's long branch is false — when bs = 1 the latch reads b1 — so the left \
component may deliver b0 later than the topological deadline)"
    );
}
