//! Quickstart: the paper's Figure 4 worked example, end to end.
//!
//! Builds `z = AND(buf(x1), x2, buf(x2))` with unit delays and
//! `req(z) = 2`, then prints:
//!
//! 1. the topological required times (Figure 3 — the baseline),
//! 2. the exact permissible relation and its latest sub-relation
//!    (§4.1 — reproduces the paper's two tables verbatim),
//! 3. the parametric analysis' unique prime (§4.2).
//!
//! Run with `cargo run --example quickstart`.

use xrta::prelude::*;
use xrta_core::LeafVarKey;

fn main() {
    let net = xrta::circuits::fig4();
    let req = [Time::new(2)];

    println!("=== Figure 4: z = AND(buf(x1), x2, buf(x2)), req(z) = 2 ===\n");

    // 1. Topological baseline (the paper's Figure 3 algorithm).
    let topo = required_times(&net, &UnitDelay, &req);
    println!("Topological required times (the pessimistic baseline):");
    for (&pi, name) in net.inputs().iter().zip(["x1", "x2"]) {
        println!("  req({name}) = {}", topo[pi.index()]);
    }

    // 2. The exact relation.
    let mut exact = exact_required_times(&net, &UnitDelay, &req, ExactOptions::default())
        .expect("small example fits any node limit");
    println!("\nExact permissible relation (§4.1), leaf vector columns:");
    let header: Vec<String> = exact
        .leaf_vars
        .iter()
        .map(|(k, _): &(LeafVarKey, _)| {
            format!(
                "χ^{}_{{x{},{}}}",
                k.time,
                k.input_pos + 1,
                if k.value { 1 } else { 0 }
            )
        })
        .collect();
    println!("  x1x2 | {}", header.join(" "));
    for m in 0..4u32 {
        let x = [(m & 1) != 0, (m & 2) != 0];
        let rows: Vec<String> = exact
            .permissible_vectors(&x)
            .iter()
            .map(|bits| {
                bits.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            })
            .collect();
        println!(
            "  {}{}   | {{{}}}",
            u8::from(x[0]),
            u8::from(x[1]),
            rows.join(", ")
        );
    }

    println!("\nLatest (minimal) sub-relation and its required-time reading:");
    for m in 0..4u32 {
        let x = [(m & 1) != 0, (m & 2) != 0];
        let tuples: Vec<String> = exact
            .latest_tuples(&x)
            .iter()
            .map(|t| {
                let r1 = if x[0] {
                    t.per_input[0].value1
                } else {
                    t.per_input[0].value0
                };
                let r2 = if x[1] {
                    t.per_input[1].value1
                } else {
                    t.per_input[1].value0
                };
                format!("(req(x1)={r1}, req(x2)={r2})")
            })
            .collect();
        println!(
            "  x1x2={}{} : {}",
            u8::from(x[0]),
            u8::from(x[1]),
            tuples.join("  or  ")
        );
    }

    // 3. The parametric analysis.
    let approx = approx1_required_times(&net, &UnitDelay, &req, Approx1Options::default())
        .expect("small example fits any node limit");
    println!(
        "\nParametric analysis (§4.2): F(α,β) has {} prime(s)",
        approx.primes.len()
    );
    for cond in &approx.conditions {
        println!(
            "  condition: x1 {} | x2 {}",
            cond.per_input[0], cond.per_input[1]
        );
    }
    println!(
        "  non-trivial vs topological: {}",
        approx.has_nontrivial_requirement()
    );
}
