#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh          # run everything
#
# Mirrors what reviewers run locally; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"
