#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh          # run everything
#
# Mirrors what reviewers run locally; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no build artifacts tracked in git"
if git ls-files | grep -q '^target/'; then
    echo "error: build artifacts under target/ are tracked; run: git rm -r --cached target/" >&2
    git ls-files | grep '^target/' | head >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The degradation suite exists to prove budgets terminate runs; a hang
# here is itself a bug, so give the step a hard wall-clock cap.
echo "==> budget/degradation tests under step timeout"
timeout 300 cargo test -q --test degradation

# Replay the regression corpus: every shrunk reproducer in
# netlists/corpus/ must stay clean through the full check matrix.
echo "==> regression corpus replay"
timeout 300 cargo test -q --release --test corpus

# Differential fuzz smoke: random circuits through every engine
# configuration against the exhaustive oracle. The time cap keeps the
# step bounded on slow machines; the exit code is 1 on any oracle
# disagreement.
echo "==> xrta fuzz smoke"
./target/release/xrta fuzz --seeds 64 --max-inputs 6 --time-cap 120 \
    --corpus /tmp/xrta-ci-corpus-$$
rm -rf "/tmp/xrta-ci-corpus-$$"

echo "CI OK"
