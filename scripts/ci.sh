#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite.
#
#   scripts/ci.sh          # run everything
#
# Mirrors what reviewers run locally; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no build artifacts tracked in git"
if git ls-files | grep -q '^target/'; then
    echo "error: build artifacts under target/ are tracked; run: git rm -r --cached target/" >&2
    git ls-files | grep '^target/' | head >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
# --workspace: the scaling gate below runs crates/bench's table2
# binary, which a root-package build would leave stale.
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The degradation suite exists to prove budgets terminate runs; a hang
# here is itself a bug, so give the step a hard wall-clock cap.
echo "==> budget/degradation tests under step timeout"
timeout 300 cargo test -q --test degradation

# Replay the regression corpus: every shrunk reproducer in
# netlists/corpus/ must stay clean through the full check matrix.
echo "==> regression corpus replay"
timeout 300 cargo test -q --release --test corpus

# Differential fuzz smoke: random circuits through every engine
# configuration against the exhaustive oracle. The time cap keeps the
# step bounded on slow machines; the exit code is 1 on any oracle
# disagreement.
echo "==> xrta fuzz smoke"
./target/release/xrta fuzz --seeds 64 --max-inputs 6 --time-cap 120 \
    --corpus /tmp/xrta-ci-corpus-$$
rm -rf "/tmp/xrta-ci-corpus-$$"

# ECO smoke: seeded edit sequences through the incremental-vs-scratch
# differential — after every edit, a warm fingerprint-keyed cone cache
# must compose the byte-identical report a cold analysis produces. The
# exit code is 1 on any divergence (shrunk pairs land in the corpus dir).
echo "==> xrta fuzz --edits smoke (ECO differential)"
./target/release/xrta fuzz --edits 64 --max-inputs 6 --time-cap 120 \
    --corpus /tmp/xrta-ci-eco-$$
rm -rf "/tmp/xrta-ci-eco-$$"

# Resynthesis smoke: generate the adder family, restructure add8, and
# require verified improvement plus a byte-stable second run (the pass
# loop is a fixpoint: resynthesizing its own output changes nothing).
# A small differential fuzz pass guards the rewrite engine itself.
echo "==> resynthesis smoke: adder family, verified gain, fixpoint"
rdir="/tmp/xrta-ci-resynth-$$"
mkdir -p "$rdir"
for spec in "8 0" "12 0" "16 0" "8 4" "16 4" "24 6"; do
    bits=${spec% *}
    bypass=${spec#* }
    ./target/release/xrta gen adder --bits "$bits" --bypass "$bypass" \
        --out "$rdir/add${bits}_${bypass}.bench"
done
fam_count=$(ls "$rdir"/*.bench | wc -l)
[ "$fam_count" -ge 6 ] || {
    echo "adder family generation produced only $fam_count netlists"; exit 1; }
resynth_out=$(./target/release/xrta resynth "$rdir/add8_0.bench" \
    --out "$rdir/add8_0.resynth.bench")
echo "$resynth_out" | grep -q "improved" || {
    echo "resynth found no improvement on add8:"; echo "$resynth_out"; exit 1; }
echo "$resynth_out" | grep -q "equivalence proof(s)" || {
    echo "resynth kept rewrites without proofs:"; echo "$resynth_out"; exit 1; }
./target/release/xrta resynth "$rdir/add8_0.resynth.bench" \
    --out "$rdir/add8_0.resynth2.bench" > /dev/null
cmp "$rdir/add8_0.resynth.bench" "$rdir/add8_0.resynth2.bench" || {
    echo "resynth is not a fixpoint: second run changed the netlist"; exit 1; }
echo "    add8 improved with proofs; second run byte-stable"
./target/release/xrta fuzz --resynth 32 --max-inputs 6 --time-cap 120 \
    --corpus "$rdir/corpus"
rm -rf "$rdir"

# Memory governance smoke: a tight byte budget must step the exact
# rung down with memory-out provenance (exit 3) — never an allocator
# abort or the OOM killer.
echo "==> memory governance smoke: mult4 exact under 64M degrades"
set +e
mem_out=$(./target/release/xrta reqtime netlists/mult4.bench \
    --algo exact --mem-limit 64M --timeout 10 2>&1)
mem_rc=$?
set -e
if [ "$mem_rc" != 3 ]; then
    echo "memory smoke: expected exit 3 (degraded), got $mem_rc"
    echo "$mem_out"
    exit 1
fi
echo "$mem_out" | grep -q "memory budget exhausted" || {
    echo "memory smoke: provenance does not name the memory budget"
    echo "$mem_out"
    exit 1
}
echo "    degraded with memory-out provenance"

# Chaos smoke: the failpoints feature must build clean and the batch
# runner must survive seeded faults, in-process kills, journal tail
# loss and resume with a byte-stable report (tests/chaos.rs).
echo "==> chaos tests (--features failpoints)"
cargo clippy --workspace --all-targets --features failpoints -- -D warnings
timeout 300 cargo test -q --features failpoints --test chaos
timeout 300 cargo test -q --features failpoints --test cluster

# Kill-and-resume, out of process: SIGKILL a real batch run mid-flight,
# then assert --resume completes it and the report matches a reference
# uninterrupted run's byte for byte.
echo "==> batch SIGKILL kill-and-resume"
bdir="/tmp/xrta-ci-batch-$$"
mkdir -p "$bdir"
for i in $(seq 0 799); do
    printf 'netlists/c17.bench algo=approx2\nnetlists/fig4.blif algo=exact\nnetlists/bypass.bench algo=approx1\n'
done > "$bdir/sweep.manifest"
./target/release/xrta batch "$bdir/sweep.manifest" \
    --journal "$bdir/ref.journal" --report "$bdir/ref.report.json"
# The kill window is a race against completion; retry from scratch if
# the run finishes before the SIGKILL lands.
resumed=0
for attempt in 1 2 3; do
    rm -f "$bdir/kill.journal" "$bdir/kill.report.json"
    timeout -s KILL 0.4 ./target/release/xrta batch "$bdir/sweep.manifest" \
        --journal "$bdir/kill.journal" --report "$bdir/kill.report.json" \
        >/dev/null && continue
    ./target/release/xrta batch "$bdir/sweep.manifest" --resume \
        --journal "$bdir/kill.journal" --report "$bdir/kill.report.json"
    resumed=1
    break
done
if [ "$resumed" = 1 ]; then
    cmp "$bdir/ref.report.json" "$bdir/kill.report.json"
    echo "    resume report matches the uninterrupted run"
else
    echo "    batch finished before every SIGKILL; resume path covered in-process only"
fi
rm -rf "$bdir"

# Serve smoke: boot the daemon on an ephemeral port with a disk cache,
# replay the same request set twice, and require the second pass to be
# served (almost) entirely from cache before draining gracefully.
echo "==> serve smoke: replay cache hits + graceful drain"
sdir="/tmp/xrta-ci-serve-$$"
mkdir -p "$sdir/cache"
./target/release/xrta serve --addr 127.0.0.1:0 --workers 2 \
    --mem-limit 256M --cache-dir "$sdir/cache" > "$sdir/serve.out" &
serve_pid=$!
addr=""
for i in $(seq 1 100); do
    addr=$(sed -n 's/^xrta: serving on //p' "$sdir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve daemon never announced an address"; exit 1; }
serve_replay() {
    for n in netlists/add8.bench netlists/c17.bench netlists/bypass.bench; do
        for r in 9 11 19; do
            ./target/release/xrta request --addr "$addr" "$n" --req "$r" \
                >/dev/null
        done
    done
}
serve_hits() {
    ./target/release/xrta request --addr "$addr" --stats \
        | sed -n 's/^serve: [0-9]* requests | \([0-9]*\) hits.*/\1/p'
}
serve_replay
hits_before=$(serve_hits)
serve_replay
hits_after=$(serve_hits)
replayed=9
gained=$((hits_after - hits_before))
if [ "$gained" -lt $((replayed * 9 / 10)) ]; then
    echo "replay pass only hit the cache $gained/$replayed times"
    exit 1
fi
echo "    replay pass: $gained/$replayed cache hits"
# Incremental replay: a delta request populates the cone cache; its
# replay must answer (almost) entirely from cached cone verdicts.
./target/release/xrta request --addr "$addr" netlists/add8.bench --delta \
    >/dev/null
./target/release/xrta request --addr "$addr" netlists/add8.bench --delta \
    >/dev/null
cone_line=$(./target/release/xrta request --addr "$addr" --stats \
    | sed -n 's/.*cones: \([0-9]*\) hit, \([0-9]*\) miss.*/\1 \2/p')
cone_hits=${cone_line% *}
cone_misses=${cone_line#* }
if [ -z "$cone_hits" ] || [ "$cone_hits" -lt 1 ] \
    || [ "$cone_hits" -lt $((cone_misses * 9 / 10)) ]; then
    echo "delta replay reused too few cones: $cone_hits hit / $cone_misses miss"
    exit 1
fi
echo "    delta replay: $cone_hits cone hits, $cone_misses misses"
# The stats tail carries the byte meter: a nonzero high-water mark
# after the cache-churning replays above, and the daemon's 256M policy
# limit was never breached.
mem_peak=$(./target/release/xrta request --addr "$addr" --stats \
    | sed -n 's/.*mem_bytes [0-9]* mem_peak \([0-9]*\).*/\1/p')
if [ -z "$mem_peak" ] || [ "$mem_peak" -lt 1 ]; then
    echo "serve stats line lacks a nonzero memory meter tail"
    ./target/release/xrta request --addr "$addr" --stats
    exit 1
fi
if [ "$mem_peak" -gt $((256 * 1024 * 1024)) ]; then
    echo "serve mem_peak $mem_peak breached the 256M policy limit"
    exit 1
fi
echo "    serve stats report mem_peak $mem_peak (under the 256M limit)"
./target/release/xrta request --addr "$addr" --shutdown
wait "$serve_pid"
rm -rf "$sdir"

# Cluster smoke: a router over two shards. Replay the corpus twice and
# require the second pass cached (the consistent-hash routing keeps each
# key's shard stable); SIGKILL one shard and replay again expecting
# zero failures (failover + client retries); finally roll both shards
# out with `route drain`.
echo "==> cluster smoke: routed cache hits + shard kill + rolling drain"
cdir="/tmp/xrta-ci-cluster-$$"
mkdir -p "$cdir"
./target/release/xrta serve --addr 127.0.0.1:0 --workers 2 \
    > "$cdir/shard1.out" &
shard1_pid=$!
./target/release/xrta serve --addr 127.0.0.1:0 --workers 2 \
    > "$cdir/shard2.out" &
shard2_pid=$!
shard1=""; shard2=""
for i in $(seq 1 100); do
    shard1=$(sed -n 's/^xrta: serving on //p' "$cdir/shard1.out")
    shard2=$(sed -n 's/^xrta: serving on //p' "$cdir/shard2.out")
    [ -n "$shard1" ] && [ -n "$shard2" ] && break
    sleep 0.1
done
[ -n "$shard1" ] && [ -n "$shard2" ] || {
    echo "cluster shards never announced addresses"; exit 1; }
./target/release/xrta route --addr 127.0.0.1:0 \
    --shards "$shard1,$shard2" --probe-interval 0.1 --cooldown 0.3 \
    > "$cdir/route.out" &
route_pid=$!
raddr=""
for i in $(seq 1 100); do
    raddr=$(sed -n 's/^xrta: routing on \([^ ]*\).*/\1/p' "$cdir/route.out")
    [ -n "$raddr" ] && break
    sleep 0.1
done
[ -n "$raddr" ] || { echo "router never announced an address"; exit 1; }
cluster_replay() {
    for n in netlists/add8.bench netlists/c17.bench netlists/bypass.bench; do
        for r in 9 11 19; do
            ./target/release/xrta request --addr "$raddr" "$n" --req "$r" \
                >/dev/null
        done
    done
}
cluster_hits() {
    ./target/release/xrta request --addr "$raddr" --stats \
        | sed -n 's/^serve: [0-9]* requests | \([0-9]*\) hits.*/\1/p'
}
cluster_replay
chits_before=$(cluster_hits)
cluster_replay
chits_after=$(cluster_hits)
cgained=$((chits_after - chits_before))
if [ "$cgained" -lt $((replayed * 9 / 10)) ]; then
    echo "routed replay only hit the shard caches $cgained/$replayed times"
    exit 1
fi
echo "    routed replay: $cgained/$replayed cache hits"
# Routed delta replay: the full-content dedup key pins a netlist's
# deltas to one shard, so the replay hits that shard's cone cache; the
# router's stats answer aggregates the cone counters across shards.
./target/release/xrta request --addr "$raddr" netlists/c17.bench --delta \
    >/dev/null
./target/release/xrta request --addr "$raddr" netlists/c17.bench --delta \
    >/dev/null
ccone_hits=$(./target/release/xrta request --addr "$raddr" --stats \
    | sed -n 's/.*cones: \([0-9]*\) hit.*/\1/p')
if [ -z "$ccone_hits" ] || [ "$ccone_hits" -lt 2 ]; then
    echo "routed delta replay reused too few cones: ${ccone_hits:-none}"
    exit 1
fi
echo "    routed delta replay: $ccone_hits cone hits"
kill -9 "$shard1_pid"
cluster_replay
echo "    replay survived a shard SIGKILL with zero failures"
./target/release/xrta route drain "$shard2" --addr "$raddr"
wait "$shard2_pid"
./target/release/xrta route drain "$shard1" --addr "$raddr" || true
./target/release/xrta request --addr "$raddr" --shutdown
wait "$route_pid"
wait "$shard1_pid" || true
rm -rf "$cdir"

# Scaling gate: the work-stealing oracle must never make threads a
# regression. Run table2's C3540 row at 1 and 4 oracle threads and fail
# if the 4-thread wall exceeds the 1-thread wall beyond container noise
# (worker slots clamp to the host's cores, so on a single-core runner
# the two schedules are identical and this checks pure overhead).
echo "==> scaling gate: C3540 @4 threads must not lose to @1"
gdir="/tmp/xrta-ci-scale-$$"
mkdir -p "$gdir"
./target/release/table2 --rows C3540 --budget-secs 60 --threads 1 \
    --json "$gdir/t1.json" > /dev/null
./target/release/table2 --rows C3540 --budget-secs 60 --threads 4 \
    --json "$gdir/t4.json" > /dev/null
# Match the circuit row only: resynth rows also carry a wall_secs.
wall1=$(grep '"circuit"' "$gdir/t1.json" \
    | sed -n 's/.*"wall_secs": \([0-9.]*\).*/\1/p' | head -1)
wall4=$(grep '"circuit"' "$gdir/t4.json" \
    | sed -n 's/.*"wall_secs": \([0-9.]*\).*/\1/p' | head -1)
[ -n "$wall1" ] && [ -n "$wall4" ] || {
    echo "scaling gate: missing wall_secs in table2 JSON"; exit 1; }
echo "    C3540 wall: @1 ${wall1}s, @4 ${wall4}s"
awk -v a="$wall1" -v b="$wall4" 'BEGIN {
    # 1.25x noise tolerance plus a 0.2s floor so millisecond-scale
    # jitter on fast runs cannot trip the gate.
    exit !(b <= a * 1.25 + 0.2)
}' || {
    echo "scaling gate: @4 threads ($wall4 s) lost to @1 ($wall1 s)"
    exit 1
}
rm -rf "$gdir"

echo "CI OK"
